//! Shared layer-routing engine.
//!
//! Every heuristic mapper follows the same skeleton — walk the circuit's
//! ASAP layers, ask a strategy for a SWAP sequence making the layer's CNOT
//! pairs adjacent, emit the SWAPs and then the layer's gates (repairing
//! directions with 4 H) — and differs only in how the SWAP sequence is
//! chosen. The engine owns that skeleton, reads distances from the
//! [`DeviceModel`]'s precomputed tables (one BFS per *model*, not one per
//! `map` call), and prices every insertion with the model's per-edge
//! costs.

use std::time::Instant;

use qxmap_arch::{route, CouplingMap, DeviceModel, Layout};
use qxmap_circuit::{asap_layers, Circuit, Gate};

use crate::traits::{HeuristicError, HeuristicResult};

/// Chooses SWAP edges making all `pairs` (logical control/target) adjacent
/// under `layout`. Implementors must return edges of the model's coupling
/// map; the engine applies them in order.
pub(crate) trait LayerPlanner {
    fn plan(
        &mut self,
        layout: &Layout,
        pairs: &[(usize, usize)],
        model: &DeviceModel,
    ) -> Result<Vec<(usize, usize)>, HeuristicError>;

    /// Why the planner degraded to its wind-down fallback, if it did —
    /// read once at the end of the run and surfaced as
    /// [`HeuristicResult::wound_down`]. Planners without a budget never
    /// wind down.
    fn wound_down(&self) -> Option<&'static str> {
        None
    }
}

/// Whether every pair is adjacent (either direction) under `layout`.
pub(crate) fn all_adjacent(layout: &Layout, pairs: &[(usize, usize)], cm: &CouplingMap) -> bool {
    pairs.iter().all(|&(c, t)| {
        let pc = layout.phys_of(c).expect("complete layout");
        let pt = layout.phys_of(t).expect("complete layout");
        cm.connected_either(pc, pt)
    })
}

/// Runs the engine with the given planner.
pub(crate) fn run_engine(
    circuit: &Circuit,
    model: &DeviceModel,
    planner: &mut dyn LayerPlanner,
) -> Result<HeuristicResult, HeuristicError> {
    let start = Instant::now();
    let cm = model.coupling_map();
    let circuit = prepare(circuit, cm)?;

    let n = circuit.num_qubits();
    let m = cm.num_qubits();
    let mut layout = Layout::identity(n, m); // Qiskit 0.4's trivial layout
    let initial_layout = layout.clone();
    let mut out = Circuit::with_clbits(m, circuit.num_clbits());
    let mut swaps = 0u32;
    let mut reversals = 0u32;
    let mut model_cost = 0u64;

    for layer in asap_layers(&circuit) {
        let pairs: Vec<(usize, usize)> = layer
            .gates
            .iter()
            .filter_map(|&g| match circuit.gates()[g] {
                Gate::Cnot { control, target } => Some((control, target)),
                _ => None,
            })
            .collect();
        if !pairs.is_empty() && !all_adjacent(&layout, &pairs, cm) {
            let plan = planner.plan(&layout, &pairs, model)?;
            for (a, b) in plan {
                route::emit_swap(&mut out, cm, a, b).expect("planners must return coupling edges");
                layout.swap_phys(a, b);
                swaps += 1;
                model_cost += u64::from(model.swap_cost(a, b).expect("coupling edge"));
            }
            debug_assert!(all_adjacent(&layout, &pairs, cm), "planner failed layer");
        }
        for &g in &layer.gates {
            match &circuit.gates()[g] {
                Gate::Cnot { control, target } => {
                    let pc = layout.phys_of(*control).expect("complete layout");
                    let pt = layout.phys_of(*target).expect("complete layout");
                    let emitted =
                        route::emit_cnot(&mut out, cm, pc, pt).expect("pairs are adjacent");
                    if emitted > 1 {
                        reversals += 1;
                    }
                    // Reversal surcharge + any calibrated CNOT overhead,
                    // the same per-edge price the SAT objective charges.
                    model_cost += model.execution_overhead(pc, pt).expect("adjacent pair");
                }
                other => emit_relabeled(&mut out, &layout, other),
            }
        }
    }

    let added = (out.original_cost() - circuit.original_cost()) as u64;
    Ok(HeuristicResult {
        mapped: out,
        initial_layout,
        final_layout: layout,
        added_gates: added,
        swaps,
        reversals,
        model_cost,
        runtime: start.elapsed(),
        wound_down: planner.wound_down(),
    })
}

/// Shared mapper preamble: capacity check, SWAP decomposition, and the
/// connectivity guard every routing heuristic relies on.
pub(crate) fn prepare(circuit: &Circuit, cm: &CouplingMap) -> Result<Circuit, HeuristicError> {
    let n = circuit.num_qubits();
    let m = cm.num_qubits();
    if n > m {
        return Err(HeuristicError::TooManyQubits {
            logical: n,
            physical: m,
        });
    }
    let circuit = circuit.decompose_swaps();
    if !cm.is_connected() && circuit.num_cnots() > 0 {
        return Err(HeuristicError::Unroutable);
    }
    Ok(circuit)
}

/// Emits a non-routing gate relabeled under `layout`. CNOTs are each
/// mapper's own business; input SWAPs must already be decomposed.
pub(crate) fn emit_relabeled(out: &mut Circuit, layout: &Layout, gate: &Gate) {
    match gate {
        Gate::One { kind, qubit } => {
            let p = layout.phys_of(*qubit).expect("complete layout");
            out.one(*kind, p);
        }
        Gate::Barrier(qs) => {
            let mapped: Vec<usize> = qs
                .iter()
                .map(|&q| layout.phys_of(q).expect("complete layout"))
                .collect();
            out.push(Gate::Barrier(mapped));
        }
        Gate::Measure { qubit, clbit } => {
            let p = layout.phys_of(*qubit).expect("complete layout");
            out.measure(p, *clbit);
        }
        Gate::Cnot { .. } => unreachable!("CNOT routing is per-mapper"),
        Gate::Swap { .. } => unreachable!("decomposed by prepare"),
    }
}
