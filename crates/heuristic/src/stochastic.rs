//! The Qiskit-0.4-style stochastic swap mapper (reference \[12\]).
//!
//! Per layer: several randomized trials, each greedily choosing the edge
//! SWAP that most decreases a randomly perturbed total coupling distance
//! of the layer's CNOT pairs; the shortest successful trial wins. This is
//! the algorithm class behind `qiskit.mapper.swap_mapper` as shipped in
//! Qiskit 0.4.15, which the paper benchmarks in Table 1's last column —
//! the paper ran it 5 times per benchmark and reports the observed
//! minimum, which the harness reproduces by varying [`StochasticSwapMapper::with_seed`].

use qxmap_arch::{CouplingMap, Layout};
use qxmap_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{all_adjacent, run_engine, LayerPlanner};
use crate::traits::{HeuristicError, HeuristicResult, Mapper};

/// The stochastic swap mapper.
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::Circuit;
/// use qxmap_heuristic::{Mapper, StochasticSwapMapper};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2);
/// c.cx(2, 1);
/// let result = StochasticSwapMapper::with_seed(1)
///     .map(&c, &devices::ibm_qx4())?;
/// assert_eq!(result.mapped.num_qubits(), 5);
/// # Ok::<(), qxmap_heuristic::HeuristicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StochasticSwapMapper {
    trials: usize,
    seed: u64,
}

impl StochasticSwapMapper {
    /// Default configuration (20 trials, seed 0), mirroring the original's
    /// defaults.
    pub fn new() -> StochasticSwapMapper {
        StochasticSwapMapper::with_seed(0)
    }

    /// Sets the RNG seed — distinct seeds model the probabilistic reruns
    /// of Table 1.
    pub fn with_seed(seed: u64) -> StochasticSwapMapper {
        StochasticSwapMapper { trials: 20, seed }
    }

    /// Overrides the per-layer trial count.
    pub fn with_trials(mut self, trials: usize) -> StochasticSwapMapper {
        self.trials = trials.max(1);
        self
    }
}

impl Default for StochasticSwapMapper {
    fn default() -> StochasticSwapMapper {
        StochasticSwapMapper::new()
    }
}

impl Mapper for StochasticSwapMapper {
    fn name(&self) -> &str {
        "stochastic-swap (Qiskit 0.4 style)"
    }

    fn map(&self, circuit: &Circuit, cm: &CouplingMap) -> Result<HeuristicResult, HeuristicError> {
        let mut planner = StochasticPlanner {
            rng: StdRng::seed_from_u64(self.seed),
            trials: self.trials,
        };
        run_engine(circuit, cm, &mut planner)
    }
}

struct StochasticPlanner {
    rng: StdRng,
    trials: usize,
}

impl LayerPlanner for StochasticPlanner {
    fn plan(
        &mut self,
        layout: &Layout,
        pairs: &[(usize, usize)],
        cm: &CouplingMap,
        dist: &[Vec<usize>],
    ) -> Result<Vec<(usize, usize)>, HeuristicError> {
        let edges = cm.undirected_edges();
        let m = cm.num_qubits();
        let mut best: Option<Vec<(usize, usize)>> = None;

        for _ in 0..self.trials {
            // Perturbed distance matrix: dist · (1 + small noise), as the
            // original used randomly scaled distances to escape ties.
            let noisy: Vec<Vec<f64>> = (0..m)
                .map(|a| {
                    (0..m)
                        .map(|b| {
                            if dist[a][b] == usize::MAX {
                                f64::INFINITY
                            } else {
                                dist[a][b] as f64 * (1.0 + 0.1 * self.rng.gen::<f64>())
                            }
                        })
                        .collect()
                })
                .collect();
            let potential = |l: &Layout| -> f64 {
                pairs
                    .iter()
                    .map(|&(c, t)| {
                        let pc = l.phys_of(c).expect("complete layout");
                        let pt = l.phys_of(t).expect("complete layout");
                        noisy[pc][pt]
                    })
                    .sum()
            };

            let mut trial_layout = layout.clone();
            let mut seq = Vec::new();
            let limit = 2 * m * m;
            let mut ok = false;
            for _ in 0..limit {
                if all_adjacent(&trial_layout, pairs, cm) {
                    ok = true;
                    break;
                }
                // Greedy: best single edge swap under the noisy potential.
                let mut best_edge = None;
                let mut best_gain = f64::INFINITY;
                let here = potential(&trial_layout);
                for &(a, b) in &edges {
                    trial_layout.swap_phys(a, b);
                    let after = potential(&trial_layout);
                    trial_layout.swap_phys(a, b);
                    if after < best_gain {
                        best_gain = after;
                        best_edge = Some((a, b));
                    }
                }
                match best_edge {
                    Some((a, b)) if best_gain < here => {
                        trial_layout.swap_phys(a, b);
                        seq.push((a, b));
                    }
                    // Stuck in a plateau: take a random edge to escape.
                    Some(_) => {
                        let (a, b) = edges[self.rng.gen_range(0..edges.len())];
                        trial_layout.swap_phys(a, b);
                        seq.push((a, b));
                    }
                    None => break,
                }
            }
            if ok || all_adjacent(&trial_layout, pairs, cm) {
                let better = best.as_ref().is_none_or(|b| seq.len() < b.len());
                if better {
                    best = Some(seq);
                }
            }
        }

        // Fall back to deterministic shortest-path routing if every trial
        // failed (pathological graphs); mirrors the original's behaviour of
        // never giving up on connected devices.
        match best {
            Some(seq) => Ok(seq),
            None => crate::naive::shortest_path_plan(layout, pairs, cm, dist),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let a = StochasticSwapMapper::with_seed(42).map(&c, &cm).unwrap();
        let b = StochasticSwapMapper::with_seed(42).map(&c, &cm).unwrap();
        assert_eq!(a.mapped, b.mapped);
        assert_eq!(a.added_gates, b.added_gates);
    }

    #[test]
    fn seeds_vary_results() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let costs: Vec<u64> = (0..8)
            .map(|s| {
                StochasticSwapMapper::with_seed(s)
                    .map(&c, &cm)
                    .unwrap()
                    .added_gates
            })
            .collect();
        // All runs must stay above the exact minimum (4).
        assert!(costs.iter().all(|&c| c >= 4), "{costs:?}");
    }

    #[test]
    fn output_is_coupling_legal() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let r = StochasticSwapMapper::with_seed(3).map(&c, &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt), "illegal CNOT ({pc},{pt})");
        }
        assert_eq!(
            r.added_gates,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
    }

    #[test]
    fn too_many_qubits_error() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        assert!(matches!(
            StochasticSwapMapper::new().map(&c, &cm),
            Err(HeuristicError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn trivial_circuit_maps_without_insertions() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(3);
        c.h(0).t(1);
        let r = StochasticSwapMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.added_gates, 0);
        assert_eq!(r.swaps, 0);
    }
}
