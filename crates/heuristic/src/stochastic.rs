//! The Qiskit-0.4-style stochastic swap mapper (reference \[12\]).
//!
//! Per layer: several randomized trials, each greedily choosing the edge
//! SWAP that most decreases a randomly perturbed total coupling distance
//! of the layer's CNOT pairs; the shortest successful trial wins. This is
//! the algorithm class behind `qiskit.mapper.swap_mapper` as shipped in
//! Qiskit 0.4.15, which the paper benchmarks in Table 1's last column —
//! the paper ran it 5 times per benchmark and reports the observed
//! minimum, which the harness reproduces by varying [`StochasticSwapMapper::with_seed`].

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use qxmap_arch::{DeviceModel, Layout};
use qxmap_circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{all_adjacent, run_engine, LayerPlanner};
use crate::traits::{HeuristicError, HeuristicResult, Mapper, StopCheck};

/// The stochastic swap mapper.
///
/// The mapper is deadline-aware: [`StochasticSwapMapper::with_deadline`]
/// and [`StochasticSwapMapper::with_stop`] are polled *between per-layer
/// trials*. When either fires, every remaining layer takes its first
/// trial's plan instead of the best of `trials` — the output stays a
/// complete, hardware-legal circuit (quality degrades, validity never
/// does) and the run winds down within one trial's latency.
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::Circuit;
/// use qxmap_heuristic::{Mapper, StochasticSwapMapper};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2);
/// c.cx(2, 1);
/// let result = StochasticSwapMapper::with_seed(1)
///     .map(&c, &devices::ibm_qx4())?;
/// assert_eq!(result.mapped.num_qubits(), 5);
/// # Ok::<(), qxmap_heuristic::HeuristicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StochasticSwapMapper {
    trials: usize,
    seed: u64,
    deadline: Option<Duration>,
    stop: Option<Arc<AtomicBool>>,
}

impl StochasticSwapMapper {
    /// Default configuration (20 trials, seed 0), mirroring the original's
    /// defaults.
    pub fn new() -> StochasticSwapMapper {
        StochasticSwapMapper::with_seed(0)
    }

    /// Sets the RNG seed — distinct seeds model the probabilistic reruns
    /// of Table 1.
    pub fn with_seed(seed: u64) -> StochasticSwapMapper {
        StochasticSwapMapper {
            trials: 20,
            seed,
            deadline: None,
            stop: None,
        }
    }

    /// Overrides the per-layer trial count.
    pub fn with_trials(mut self, trials: usize) -> StochasticSwapMapper {
        self.trials = trials.max(1);
        self
    }

    /// Caps the wall-clock time of one `map` call (measured from its
    /// entry). Polled between per-layer trials; at least one trial per
    /// layer always runs, so the result is valid and the overshoot is
    /// bounded by a single trial.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> StochasticSwapMapper {
        self.deadline = deadline;
        self
    }

    /// Attaches a cooperative stop flag (e.g. a racing supervisor's
    /// cancel handle, `qxmap_core::SolveControl::cancel_handle`). Polled
    /// between per-layer trials, with the same at-least-one-trial
    /// guarantee as [`StochasticSwapMapper::with_deadline`].
    pub fn with_stop(mut self, stop: Arc<AtomicBool>) -> StochasticSwapMapper {
        self.stop = Some(stop);
        self
    }
}

impl Default for StochasticSwapMapper {
    fn default() -> StochasticSwapMapper {
        StochasticSwapMapper::new()
    }
}

impl Mapper for StochasticSwapMapper {
    fn name(&self) -> &str {
        "stochastic-swap (Qiskit 0.4 style)"
    }

    fn map_model(
        &self,
        circuit: &Circuit,
        model: &DeviceModel,
    ) -> Result<HeuristicResult, HeuristicError> {
        let mut planner = StochasticPlanner {
            rng: StdRng::seed_from_u64(self.seed),
            trials: self.trials,
            check: StopCheck::arm(self.deadline, self.stop.clone()),
        };
        run_engine(circuit, model, &mut planner)
    }
}

struct StochasticPlanner {
    rng: StdRng,
    trials: usize,
    /// The shared deadline/stop wind-down signal, armed at `map` entry.
    check: StopCheck,
}

impl StochasticPlanner {
    fn stopped(&self) -> bool {
        self.check.stopped()
    }
}

impl LayerPlanner for StochasticPlanner {
    fn wound_down(&self) -> Option<&'static str> {
        self.check.cause()
    }

    fn plan(
        &mut self,
        layout: &Layout,
        pairs: &[(usize, usize)],
        model: &DeviceModel,
    ) -> Result<Vec<(usize, usize)>, HeuristicError> {
        let cm = model.coupling_map();
        let dist = model.hops();
        // The potential perturbs the *cost-weighted* distances: a
        // constant multiple of the hop counts under uniform costs (same
        // trials as before), calibration-aware on skewed models.
        let wdist = model.swap_distances();
        let edges = cm.undirected_edges();
        let m = cm.num_qubits();
        // Cross-trial winner by modeled SWAP cost (length as tie-break):
        // under uniform costs this is the old fewest-swaps pick, while a
        // calibrated model keeps a longer-but-cheaper plan — consistent
        // with the weighted potential steering each trial.
        let plan_cost = |seq: &[(usize, usize)]| -> u64 {
            seq.iter()
                .map(|&(a, b)| u64::from(model.swap_cost(a, b).expect("edge")))
                .sum()
        };
        let mut best: Option<(u64, Vec<(usize, usize)>)> = None;

        for trial in 0..self.trials {
            // Deadline/stop observance between trials: the first trial of
            // every layer always runs (the plan must exist for the output
            // to be valid), later ones are skipped once a budget fires.
            if trial > 0 && self.stopped() {
                break;
            }
            // Perturbed distance matrix: dist · (1 + small noise), as the
            // original used randomly scaled distances to escape ties.
            let noisy: Vec<Vec<f64>> = (0..m)
                .map(|a| {
                    (0..m)
                        .map(|b| {
                            if wdist[a][b] == u64::MAX {
                                f64::INFINITY
                            } else {
                                wdist[a][b] as f64 * (1.0 + 0.1 * self.rng.gen::<f64>())
                            }
                        })
                        .collect()
                })
                .collect();
            let potential = |l: &Layout| -> f64 {
                pairs
                    .iter()
                    .map(|&(c, t)| {
                        let pc = l.phys_of(c).expect("complete layout");
                        let pt = l.phys_of(t).expect("complete layout");
                        noisy[pc][pt]
                    })
                    .sum()
            };

            let mut trial_layout = layout.clone();
            let mut seq = Vec::new();
            let limit = 2 * m * m;
            let mut ok = false;
            for _ in 0..limit {
                if all_adjacent(&trial_layout, pairs, cm) {
                    ok = true;
                    break;
                }
                // Greedy: best single edge swap under the noisy potential.
                let mut best_edge = None;
                let mut best_gain = f64::INFINITY;
                let here = potential(&trial_layout);
                for &(a, b) in &edges {
                    trial_layout.swap_phys(a, b);
                    let after = potential(&trial_layout);
                    trial_layout.swap_phys(a, b);
                    if after < best_gain {
                        best_gain = after;
                        best_edge = Some((a, b));
                    }
                }
                match best_edge {
                    Some((a, b)) if best_gain < here => {
                        trial_layout.swap_phys(a, b);
                        seq.push((a, b));
                    }
                    // Stuck in a plateau: take a random edge to escape.
                    Some(_) => {
                        let (a, b) = edges[self.rng.gen_range(0..edges.len())];
                        trial_layout.swap_phys(a, b);
                        seq.push((a, b));
                    }
                    None => break,
                }
            }
            if ok || all_adjacent(&trial_layout, pairs, cm) {
                let cost = plan_cost(&seq);
                let better = best
                    .as_ref()
                    .is_none_or(|(bc, b)| (cost, seq.len()) < (*bc, b.len()));
                if better {
                    best = Some((cost, seq));
                }
            }
        }

        // Fall back to deterministic shortest-path routing if every trial
        // failed (pathological graphs); mirrors the original's behaviour of
        // never giving up on connected devices.
        match best {
            Some((_, seq)) => Ok(seq),
            None => crate::naive::shortest_path_plan(layout, pairs, cm, dist),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn deterministic_for_fixed_seed() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let a = StochasticSwapMapper::with_seed(42).map(&c, &cm).unwrap();
        let b = StochasticSwapMapper::with_seed(42).map(&c, &cm).unwrap();
        assert_eq!(a.mapped, b.mapped);
        assert_eq!(a.added_gates, b.added_gates);
    }

    #[test]
    fn seeds_vary_results() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let costs: Vec<u64> = (0..8)
            .map(|s| {
                StochasticSwapMapper::with_seed(s)
                    .map(&c, &cm)
                    .unwrap()
                    .added_gates
            })
            .collect();
        // All runs must stay above the exact minimum (4).
        assert!(costs.iter().all(|&c| c >= 4), "{costs:?}");
    }

    #[test]
    fn output_is_coupling_legal() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let r = StochasticSwapMapper::with_seed(3).map(&c, &cm).unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt), "illegal CNOT ({pc},{pt})");
        }
        assert_eq!(
            r.added_gates,
            7 * u64::from(r.swaps) + 4 * u64::from(r.reversals)
        );
    }

    #[test]
    fn too_many_qubits_error() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        assert!(matches!(
            StochasticSwapMapper::new().map(&c, &cm),
            Err(HeuristicError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn expired_deadline_still_yields_a_valid_circuit() {
        // A zero deadline skips every trial past the first: the output
        // must still be complete and coupling-legal.
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let r = StochasticSwapMapper::with_seed(3)
            .with_trials(50)
            .with_deadline(Some(Duration::ZERO))
            .map(&c, &cm)
            .unwrap();
        for (pc, pt) in r.mapped.cnot_skeleton() {
            assert!(cm.has_edge(pc, pt), "illegal CNOT ({pc},{pt})");
        }
        assert!(r.added_gates >= 4, "cannot beat the exact minimum");
    }

    #[test]
    fn pre_set_stop_flag_skips_extra_trials() {
        let cm = devices::ibm_qx4();
        let c = paper_example();
        let flag = Arc::new(AtomicBool::new(true));
        let stopped = StochasticSwapMapper::with_seed(3)
            .with_trials(50)
            .with_stop(Arc::clone(&flag))
            .map(&c, &cm)
            .unwrap();
        // With the flag raised from the start, the run degenerates to one
        // trial per layer — identical to a single-trial run.
        let single = StochasticSwapMapper::with_seed(3)
            .with_trials(1)
            .map(&c, &cm)
            .unwrap();
        assert_eq!(stopped.mapped, single.mapped);
        // A lowered flag restores the full (deterministic) search.
        flag.store(false, std::sync::atomic::Ordering::Relaxed);
        let full = StochasticSwapMapper::with_seed(3)
            .with_trials(50)
            .with_stop(flag)
            .map(&c, &cm)
            .unwrap();
        let reference = StochasticSwapMapper::with_seed(3)
            .with_trials(50)
            .map(&c, &cm)
            .unwrap();
        assert_eq!(full.mapped, reference.mapped);
    }

    #[test]
    fn trivial_circuit_maps_without_insertions() {
        let cm = devices::ibm_qx4();
        let mut c = Circuit::new(3);
        c.h(0).t(1);
        let r = StochasticSwapMapper::new().map(&c, &cm).unwrap();
        assert_eq!(r.added_gates, 0);
        assert_eq!(r.swaps, 0);
    }
}
