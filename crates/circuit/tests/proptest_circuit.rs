//! Property-based tests for the circuit IR.

use proptest::prelude::*;
use qxmap_circuit::{asap_layers, sequential_layers, Circuit, Dag, Gate, OneQubitKind};

fn gate_strategy(n: usize) -> impl Strategy<Value = Gate> {
    // Distinct operand pairs are built arithmetically (no rejection filter).
    prop_oneof![
        (0..n).prop_map(|q| Gate::one(OneQubitKind::H, q)),
        (0..n).prop_map(|q| Gate::one(OneQubitKind::T, q)),
        (0..n, 1..n).prop_map(move |(c, d)| Gate::Cnot {
            control: c,
            target: (c + d) % n,
        }),
        (0..n, 1..n).prop_map(move |(a, d)| Gate::Swap { a, b: (a + d) % n }),
    ]
}

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..6).prop_flat_map(|n| {
        prop::collection::vec(gate_strategy(n), 0..30).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            c.extend(gates);
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Layers partition the gate list, preserve order, and stay disjoint.
    #[test]
    fn sequential_layers_partition(c in circuit_strategy()) {
        let layers = sequential_layers(&c);
        let flat: Vec<usize> = layers.iter().flat_map(|l| l.gates.clone()).collect();
        prop_assert_eq!(flat, (0..c.gates().len()).collect::<Vec<_>>());
        for layer in &layers {
            let mut seen = std::collections::BTreeSet::new();
            for &g in &layer.gates {
                for q in c.gates()[g].qubits() {
                    prop_assert!(seen.insert(q));
                }
            }
        }
    }

    /// ASAP layer count equals circuit depth; layers respect dependencies.
    #[test]
    fn asap_layers_match_depth(c in circuit_strategy()) {
        let layers = asap_layers(&c);
        prop_assert_eq!(layers.len(), c.depth());
        let dag = Dag::new(&c);
        for (level, layer) in layers.iter().enumerate() {
            for &g in &layer.gates {
                prop_assert_eq!(dag.level(g), level);
                for &p in &dag.node(g).predecessors {
                    prop_assert!(dag.level(p) < level);
                }
            }
        }
    }

    /// SWAP decomposition preserves qubit count and triples CNOTs.
    #[test]
    fn swap_decomposition_counts(c in circuit_strategy()) {
        let swaps = c.gates().iter().filter(|g| matches!(g, Gate::Swap { .. })).count();
        let d = c.decompose_swaps();
        prop_assert_eq!(d.num_qubits(), c.num_qubits());
        prop_assert_eq!(d.num_cnots(), c.num_cnots() + 3 * swaps);
        let no_swaps = d.gates().iter().all(|g| !matches!(g, Gate::Swap { .. }));
        prop_assert!(no_swaps);
    }

    /// Double inversion is the identity (on measurement-free circuits).
    #[test]
    fn inverse_is_involutive(c in circuit_strategy()) {
        let inv = c.inverse().expect("no measurements");
        let back = inv.inverse().expect("no measurements");
        prop_assert_eq!(back.gates(), c.gates());
    }

    /// The skeleton has exactly the CNOTs, in order.
    #[test]
    fn skeleton_matches_gate_list(c in circuit_strategy()) {
        let skel = c.cnot_skeleton();
        let expected: Vec<(usize, usize)> = c
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Cnot { control, target } => Some((*control, *target)),
                _ => None,
            })
            .collect();
        prop_assert_eq!(skel, expected);
    }

    /// Drawing never panics and has one line per qubit.
    #[test]
    fn drawing_is_total(c in circuit_strategy()) {
        let art = qxmap_circuit::draw(&c);
        prop_assert_eq!(art.lines().count(), c.num_qubits());
    }
}
