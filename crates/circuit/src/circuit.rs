//! The [`Circuit`] container and its statistics.

use std::error::Error;
use std::fmt;

use crate::gate::{Gate, OneQubitKind};

/// Error returned when a gate refers to qubits or classical bits outside the
/// circuit's registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitError {
    gate: String,
    num_qubits: usize,
    num_clbits: usize,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate `{}` is out of range for circuit with {} qubits and {} clbits",
            self.gate, self.num_qubits, self.num_clbits
        )
    }
}

impl Error for CircuitError {}

/// A quantum circuit: an ordered sequence of [`Gate`]s over `n` logical
/// qubits (Definition 1 of the paper).
///
/// ```
/// use qxmap_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.h(0);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// assert_eq!(c.depth(), 3);
/// assert_eq!(c.gates().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    gates: Vec<Gate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` logical qubits and no
    /// classical bits.
    pub fn new(num_qubits: usize) -> Circuit {
        Circuit {
            num_qubits,
            num_clbits: 0,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty circuit with both quantum and classical registers.
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Circuit {
        Circuit {
            num_qubits,
            num_clbits,
            gates: Vec::new(),
            name: String::new(),
        }
    }

    /// Sets a human-readable benchmark name (builder style).
    pub fn named(mut self, name: impl Into<String>) -> Circuit {
        self.name = name.into();
        self
    }

    /// The circuit's name ("" when unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical qubits `n`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The gate sequence.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Consumes the circuit, returning the gate sequence.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Appends a gate after validating its operand indices.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if any operand is out of range or a
    /// two-qubit gate references the same qubit twice.
    pub fn try_push(&mut self, gate: Gate) -> Result<(), CircuitError> {
        if gate.fits(self.num_qubits, self.num_clbits) {
            self.gates.push(gate);
            Ok(())
        } else {
            Err(CircuitError {
                gate: gate.to_string(),
                num_qubits: self.num_qubits,
                num_clbits: self.num_clbits,
            })
        }
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate's operands are out of range; use [`Circuit::try_push`]
    /// for a fallible variant.
    pub fn push(&mut self, gate: Gate) {
        self.try_push(gate).expect("gate operands out of range");
    }

    /// Appends all gates of `other` (registers must be compatible).
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits or clbits than `self`.
    pub fn append(&mut self, other: &Circuit) {
        assert!(other.num_qubits <= self.num_qubits);
        assert!(other.num_clbits <= self.num_clbits || other.num_clbits == 0);
        for g in &other.gates {
            self.push(g.clone());
        }
    }

    // --- builder conveniences ------------------------------------------------

    /// Appends a single-qubit gate of the given kind.
    pub fn one(&mut self, kind: OneQubitKind, q: usize) -> &mut Circuit {
        self.push(Gate::one(kind, q));
        self
    }

    /// Appends an X (NOT) gate.
    pub fn x(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::X, q)
    }

    /// Appends a Y gate.
    pub fn y(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Y, q)
    }

    /// Appends a Z gate.
    pub fn z(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Z, q)
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::H, q)
    }

    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::S, q)
    }

    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Sdg, q)
    }

    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::T, q)
    }

    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Tdg, q)
    }

    /// Appends an Rx rotation.
    pub fn rx(&mut self, angle: f64, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Rx(angle), q)
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, angle: f64, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Ry(angle), q)
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, angle: f64, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::Rz(angle), q)
    }

    /// Appends IBM's universal `U(θ, φ, λ)` gate.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Circuit {
        self.one(OneQubitKind::U(theta, phi, lambda), q)
    }

    /// Appends a CNOT gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Circuit {
        self.push(Gate::cnot(control, target));
        self
    }

    /// Appends a SWAP gate.
    pub fn swap_gate(&mut self, a: usize, b: usize) -> &mut Circuit {
        self.push(Gate::swap(a, b));
        self
    }

    /// Appends a barrier over all qubits.
    pub fn barrier(&mut self) -> &mut Circuit {
        let qs = (0..self.num_qubits).collect();
        self.push(Gate::Barrier(qs));
        self
    }

    /// Appends a measurement.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> &mut Circuit {
        self.push(Gate::Measure { qubit, clbit });
        self
    }

    // --- statistics ----------------------------------------------------------

    /// Number of single-qubit gates.
    pub fn num_single_qubit_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::One { .. }))
            .count()
    }

    /// Number of CNOT gates.
    pub fn num_cnots(&self) -> usize {
        self.gates.iter().filter(|g| g.is_cnot()).count()
    }

    /// The paper's *original cost*: single-qubit gates plus CNOTs
    /// (Table 1, column "original cost").
    pub fn original_cost(&self) -> usize {
        self.gates.iter().filter(|g| g.is_costed()).count()
    }

    /// Circuit depth: length of the longest chain of gates sharing qubits
    /// (barriers participate, measurements count as depth-1 operations).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            if qs.is_empty() {
                continue;
            }
            let l = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &qs {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            num_qubits: self.num_qubits,
            num_gates: self.gates.len(),
            num_single_qubit_gates: self.num_single_qubit_gates(),
            num_cnots: self.num_cnots(),
            depth: self.depth(),
        }
    }

    // --- transformations -----------------------------------------------------

    /// The CNOT skeleton: the ordered list of `(control, target)` pairs of
    /// all CNOT gates, which is the input of the symbolic formulation
    /// (Definition 4; "we ignore single qubit gates when formulating the
    /// mapping problem").
    pub fn cnot_skeleton(&self) -> Vec<(usize, usize)> {
        self.gates
            .iter()
            .filter_map(|g| match g {
                Gate::Cnot { control, target } => Some((*control, *target)),
                _ => None,
            })
            .collect()
    }

    /// Returns a copy without single-qubit gates, barriers or measurements —
    /// the circuit of Fig. 1b, as used for the symbolic formulation.
    pub fn without_single_qubit_gates(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        c.name = self.name.clone();
        for g in &self.gates {
            if g.is_two_qubit() {
                c.gates.push(g.clone());
            }
        }
        c
    }

    /// Returns a copy where every SWAP gate is decomposed into three CNOTs
    /// (`CX(a,b) CX(b,a) CX(a,b)`, cf. Fig. 3 of the paper).
    pub fn decompose_swaps(&self) -> Circuit {
        let mut c = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        c.name = self.name.clone();
        for g in &self.gates {
            match g {
                Gate::Swap { a, b } => {
                    c.cx(*a, *b).cx(*b, *a).cx(*a, *b);
                }
                other => c.push(other.clone()),
            }
        }
        c
    }

    /// Returns the circuit with all qubit indices rewritten through `f`,
    /// over a register of `new_num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if a rewritten gate is out of range.
    pub fn map_qubits(&self, new_num_qubits: usize, mut f: impl FnMut(usize) -> usize) -> Circuit {
        let mut c = Circuit::with_clbits(new_num_qubits, self.num_clbits);
        c.name = self.name.clone();
        for g in &self.gates {
            c.push(g.map_qubits(&mut f));
        }
        c
    }

    /// The inverse circuit (gates reversed and inverted). Measurements and
    /// barriers are not invertible and are rejected.
    ///
    /// # Errors
    ///
    /// Returns an error naming the offending gate if the circuit contains a
    /// measurement.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut c = Circuit::new(self.num_qubits);
        c.name = self.name.clone();
        for g in self.gates.iter().rev() {
            match g {
                Gate::One { kind, qubit } => c.push(Gate::one(kind.inverse(), *qubit)),
                Gate::Cnot { .. } | Gate::Swap { .. } => c.push(g.clone()),
                Gate::Barrier(qs) => c.push(Gate::Barrier(qs.clone())),
                Gate::Measure { .. } => {
                    return Err(CircuitError {
                        gate: g.to_string(),
                        num_qubits: self.num_qubits,
                        num_clbits: self.num_clbits,
                    })
                }
            }
        }
        Ok(c)
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::draw::draw(self))
    }
}

/// Aggregated circuit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircuitStats {
    /// Number of logical qubits.
    pub num_qubits: usize,
    /// Total gate count (including barriers and measurements).
    pub num_gates: usize,
    /// Number of single-qubit gates.
    pub num_single_qubit_gates: usize,
    /// Number of CNOTs.
    pub num_cnots: usize,
    /// Circuit depth.
    pub depth: usize,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} qubits, {} gates ({} 1q + {} CNOT), depth {}",
            self.num_qubits,
            self.num_gates,
            self.num_single_qubit_gates,
            self.num_cnots,
            self.depth
        )
    }
}

/// Builds the paper's running example (Fig. 1a): 4 qubits, 8 gates —
/// 5 CNOTs plus T(q1), H(q2), H(q3) — in zero-based indices.
///
/// The CNOT skeleton (Fig. 1b / Fig. 4) is
/// `д1 = CNOT(q3,q4), д2 = CNOT(q1,q2), д3 = CNOT(q2,q3),
/// д4 = CNOT(q1,q3), д5 = CNOT(q3,q1)`.
/// (The arXiv rendering of Fig. 1a drops the ⊕ glyphs; the targets of
/// д4/д5 are reconstructed from the paper's stated facts: minimal cost
/// F = 4 — Example 7 — achieved with zero SWAPs and a single reversed CNOT
/// between the q1/q3 pair as drawn in Fig. 5, which on the antisymmetric
/// QX4 coupling map forces the pair to appear in both orientations.)
///
/// ```
/// let c = qxmap_circuit::paper_example();
/// assert_eq!(c.num_qubits(), 4);
/// assert_eq!(c.original_cost(), 8);
/// assert_eq!(c.cnot_skeleton(),
///            vec![(2, 3), (0, 1), (1, 2), (0, 2), (2, 0)]);
/// ```
pub fn paper_example() -> Circuit {
    let mut c = Circuit::new(4).named("fig1a");
    // Zero-based translation of Fig. 1a: q1→0, q2→1, q3→2, q4→3.
    c.cx(2, 3); // д1 (CNOT skeleton gate 1)
    c.h(2);
    c.t(0);
    c.cx(0, 1); // д2
    c.h(1);
    c.cx(1, 2); // д3
    c.cx(0, 2); // д4
    c.cx(2, 0); // д5
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_ranges() {
        let mut c = Circuit::new(2);
        assert!(c.try_push(Gate::one(OneQubitKind::H, 0)).is_ok());
        assert!(c.try_push(Gate::one(OneQubitKind::H, 2)).is_err());
        assert!(c
            .try_push(Gate::Cnot {
                control: 0,
                target: 0
            })
            .is_err());
        assert!(
            c.try_push(Gate::Measure { qubit: 0, clbit: 0 }).is_err(),
            "no clbits declared"
        );
        assert_eq!(c.gates().len(), 1);
    }

    #[test]
    fn error_display_mentions_gate() {
        let mut c = Circuit::new(1);
        let err = c.try_push(Gate::one(OneQubitKind::X, 7)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("X q7"), "{msg}");
        assert!(msg.contains("1 qubits"), "{msg}");
    }

    #[test]
    fn counts_and_cost() {
        let c = paper_example();
        assert_eq!(c.num_single_qubit_gates(), 3);
        assert_eq!(c.num_cnots(), 5);
        assert_eq!(c.original_cost(), 8);
        assert_eq!(c.stats().num_gates, 8);
    }

    #[test]
    fn depth_tracks_longest_chain() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1 (parallel)
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // depth 2
        c.cx(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn skeleton_strips_single_qubit_gates() {
        let c = paper_example();
        let skel = c.without_single_qubit_gates();
        assert_eq!(skel.gates().len(), 5);
        assert_eq!(skel.num_single_qubit_gates(), 0);
        assert_eq!(
            c.cnot_skeleton(),
            vec![(2, 3), (0, 1), (1, 2), (0, 2), (2, 0)]
        );
    }

    #[test]
    fn swap_decomposition_is_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap_gate(0, 1);
        let d = c.decompose_swaps();
        assert_eq!(d.cnot_skeleton(), vec![(0, 1), (1, 0), (0, 1)]);
    }

    #[test]
    fn map_qubits_relabels() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let m = c.map_qubits(5, |q| q + 3);
        assert_eq!(m.cnot_skeleton(), vec![(3, 4)]);
        assert_eq!(m.num_qubits(), 5);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.t(0);
        c.cx(0, 1);
        let inv = c.inverse().unwrap();
        assert_eq!(inv.gates()[0], Gate::cnot(0, 1));
        assert_eq!(inv.gates()[1], Gate::one(OneQubitKind::Tdg, 0));
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut c = Circuit::with_clbits(1, 1);
        c.measure(0, 0);
        assert!(c.inverse().is_err());
    }

    #[test]
    fn extend_appends() {
        let mut c = Circuit::new(2);
        c.extend(vec![Gate::cnot(0, 1), Gate::one(OneQubitKind::H, 1)]);
        assert_eq!(c.gates().len(), 2);
    }

    #[test]
    fn stats_display() {
        let c = paper_example();
        let s = c.stats().to_string();
        assert!(s.contains("4 qubits"));
        assert!(s.contains("5 CNOT"));
    }
}
