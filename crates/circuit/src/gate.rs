//! Gate types of the circuit IR.

use std::fmt;

/// Kinds of single-qubit operations.
///
/// IBM QX architectures natively provide the universal gate
/// `U(θ, φ, λ) = Rz(φ) Ry(θ) Rz(λ)`; all named gates below are special cases
/// and are kept symbolic so that circuits can be printed and exported the way
/// users wrote them.
///
/// Parameterized variants carry angles in radians. Because angles are `f64`,
/// this type implements [`PartialEq`] but not `Eq`/`Hash`.
///
/// ```
/// use qxmap_circuit::OneQubitKind;
/// assert_eq!(OneQubitKind::H.label(), "H");
/// assert_eq!(OneQubitKind::Rz(1.5).label(), "Rz");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OneQubitKind {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard — the gate used to reverse CNOT directions during mapping.
    H,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T = fourth root of Z.
    T,
    /// T†.
    Tdg,
    /// Rotation about the x-axis by the given angle (radians).
    Rx(f64),
    /// Rotation about the y-axis by the given angle (radians).
    Ry(f64),
    /// Rotation about the z-axis by the given angle (radians).
    Rz(f64),
    /// Diagonal phase gate `diag(1, e^{iλ})`.
    Phase(f64),
    /// IBM's universal single-qubit gate `U(θ, φ, λ)`.
    U(f64, f64, f64),
}

impl OneQubitKind {
    /// Short label used in diagrams and QASM-ish debugging output.
    pub fn label(&self) -> &'static str {
        match self {
            OneQubitKind::I => "I",
            OneQubitKind::X => "X",
            OneQubitKind::Y => "Y",
            OneQubitKind::Z => "Z",
            OneQubitKind::H => "H",
            OneQubitKind::S => "S",
            OneQubitKind::Sdg => "S†",
            OneQubitKind::T => "T",
            OneQubitKind::Tdg => "T†",
            OneQubitKind::Rx(_) => "Rx",
            OneQubitKind::Ry(_) => "Ry",
            OneQubitKind::Rz(_) => "Rz",
            OneQubitKind::Phase(_) => "P",
            OneQubitKind::U(..) => "U",
        }
    }

    /// The inverse (adjoint) of this gate kind.
    ///
    /// ```
    /// use qxmap_circuit::OneQubitKind;
    /// assert_eq!(OneQubitKind::S.inverse(), OneQubitKind::Sdg);
    /// assert_eq!(OneQubitKind::H.inverse(), OneQubitKind::H);
    /// ```
    pub fn inverse(&self) -> OneQubitKind {
        match *self {
            OneQubitKind::S => OneQubitKind::Sdg,
            OneQubitKind::Sdg => OneQubitKind::S,
            OneQubitKind::T => OneQubitKind::Tdg,
            OneQubitKind::Tdg => OneQubitKind::T,
            OneQubitKind::Rx(a) => OneQubitKind::Rx(-a),
            OneQubitKind::Ry(a) => OneQubitKind::Ry(-a),
            OneQubitKind::Rz(a) => OneQubitKind::Rz(-a),
            OneQubitKind::Phase(a) => OneQubitKind::Phase(-a),
            OneQubitKind::U(t, p, l) => OneQubitKind::U(-t, -l, -p),
            k => k,
        }
    }

    /// Whether the gate is self-inverse (its own adjoint).
    pub fn is_self_inverse(&self) -> bool {
        matches!(
            self,
            OneQubitKind::I | OneQubitKind::X | OneQubitKind::Y | OneQubitKind::Z | OneQubitKind::H
        )
    }
}

impl fmt::Display for OneQubitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OneQubitKind::Rx(a) => write!(f, "Rx({a:.4})"),
            OneQubitKind::Ry(a) => write!(f, "Ry({a:.4})"),
            OneQubitKind::Rz(a) => write!(f, "Rz({a:.4})"),
            OneQubitKind::Phase(a) => write!(f, "P({a:.4})"),
            OneQubitKind::U(t, p, l) => write!(f, "U({t:.4},{p:.4},{l:.4})"),
            k => write!(f, "{}", k.label()),
        }
    }
}

/// A gate of the circuit IR (Definition 1 of the paper, plus pragmatic
/// extensions).
///
/// ```
/// use qxmap_circuit::{Gate, OneQubitKind};
/// let g = Gate::cnot(0, 1);
/// assert!(g.is_cnot());
/// assert_eq!(g.qubits(), vec![0, 1]);
/// let h = Gate::one(OneQubitKind::H, 2);
/// assert_eq!(h.qubits(), vec![2]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// A single-qubit gate `U_k(q_j, U)`.
    One {
        /// The operation applied.
        kind: OneQubitKind,
        /// Target qubit index.
        qubit: usize,
    },
    /// A controlled-NOT `CNOT_k(q_c, q_t)` with `q_c != q_t`.
    Cnot {
        /// Control qubit index.
        control: usize,
        /// Target qubit index.
        target: usize,
    },
    /// A SWAP of two qubits' states. Mapping inserts these; input circuits
    /// may also contain them (they are decomposed before mapping).
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// A scheduling barrier across the given qubits (no unitary effect).
    Barrier(Vec<usize>),
    /// Projective measurement of `qubit` into classical bit `clbit`.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
}

impl Gate {
    /// Convenience constructor for a single-qubit gate.
    pub fn one(kind: OneQubitKind, qubit: usize) -> Gate {
        Gate::One { kind, qubit }
    }

    /// Convenience constructor for a CNOT gate.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn cnot(control: usize, target: usize) -> Gate {
        assert_ne!(control, target, "CNOT control and target must differ");
        Gate::Cnot { control, target }
    }

    /// Convenience constructor for a SWAP gate.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(a: usize, b: usize) -> Gate {
        assert_ne!(a, b, "SWAP qubits must differ");
        Gate::Swap { a, b }
    }

    /// The qubits this gate acts on, in gate-defined order.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::One { qubit, .. } => vec![*qubit],
            Gate::Cnot { control, target } => vec![*control, *target],
            Gate::Swap { a, b } => vec![*a, *b],
            Gate::Barrier(qs) => qs.clone(),
            Gate::Measure { qubit, .. } => vec![*qubit],
        }
    }

    /// Whether every operand index fits a circuit with the given
    /// register sizes, with two-qubit gates referencing distinct qubits
    /// — the validation behind `Circuit::try_push`, shared with
    /// streaming decoders that never materialize a circuit.
    pub fn fits(&self, num_qubits: usize, num_clbits: usize) -> bool {
        match self {
            Gate::One { qubit, .. } => *qubit < num_qubits,
            Gate::Cnot { control, target } => {
                *control < num_qubits && *target < num_qubits && control != target
            }
            Gate::Swap { a, b } => *a < num_qubits && *b < num_qubits && a != b,
            Gate::Barrier(qs) => qs.iter().all(|&q| q < num_qubits),
            Gate::Measure { qubit, clbit } => *qubit < num_qubits && *clbit < num_clbits,
        }
    }

    /// Whether this gate is a CNOT.
    pub fn is_cnot(&self) -> bool {
        matches!(self, Gate::Cnot { .. })
    }

    /// Whether this gate touches two qubits (CNOT or SWAP).
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cnot { .. } | Gate::Swap { .. })
    }

    /// Whether this gate contributes to the paper's cost metric
    /// (number of operations: single-qubit gates and CNOTs; barriers and
    /// measurements are free, SWAPs are decomposed before costing).
    pub fn is_costed(&self) -> bool {
        matches!(self, Gate::One { .. } | Gate::Cnot { .. })
    }

    /// Whether the gate acts on `qubit`.
    pub fn acts_on(&self, qubit: usize) -> bool {
        match self {
            Gate::One { qubit: q, .. } => *q == qubit,
            Gate::Cnot { control, target } => *control == qubit || *target == qubit,
            Gate::Swap { a, b } => *a == qubit || *b == qubit,
            Gate::Barrier(qs) => qs.contains(&qubit),
            Gate::Measure { qubit: q, .. } => *q == qubit,
        }
    }

    /// Returns the gate with all qubit indices rewritten through `f`.
    pub fn map_qubits(&self, mut f: impl FnMut(usize) -> usize) -> Gate {
        match self {
            Gate::One { kind, qubit } => Gate::One {
                kind: *kind,
                qubit: f(*qubit),
            },
            Gate::Cnot { control, target } => Gate::Cnot {
                control: f(*control),
                target: f(*target),
            },
            Gate::Swap { a, b } => Gate::Swap { a: f(*a), b: f(*b) },
            Gate::Barrier(qs) => Gate::Barrier(qs.iter().map(|&q| f(q)).collect()),
            Gate::Measure { qubit, clbit } => Gate::Measure {
                qubit: f(*qubit),
                clbit: *clbit,
            },
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::One { kind, qubit } => write!(f, "{kind} q{qubit}"),
            Gate::Cnot { control, target } => write!(f, "CNOT q{control}, q{target}"),
            Gate::Swap { a, b } => write!(f, "SWAP q{a}, q{b}"),
            Gate::Barrier(qs) => {
                write!(f, "barrier ")?;
                for (i, q) in qs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "q{q}")?;
                }
                Ok(())
            }
            Gate::Measure { qubit, clbit } => write!(f, "measure q{qubit} -> c{clbit}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(OneQubitKind::H.label(), "H");
        assert_eq!(OneQubitKind::Tdg.label(), "T†");
        assert_eq!(OneQubitKind::U(0.0, 0.0, 0.0).label(), "U");
    }

    #[test]
    fn inverse_pairs() {
        assert_eq!(OneQubitKind::S.inverse(), OneQubitKind::Sdg);
        assert_eq!(OneQubitKind::Tdg.inverse(), OneQubitKind::T);
        assert_eq!(OneQubitKind::Rx(0.5).inverse(), OneQubitKind::Rx(-0.5));
        assert!(OneQubitKind::X.is_self_inverse());
        assert!(!OneQubitKind::T.is_self_inverse());
    }

    #[test]
    fn u_inverse_swaps_phi_lambda() {
        // (U(θ,φ,λ))⁻¹ = U(−θ,−λ,−φ)
        assert_eq!(
            OneQubitKind::U(1.0, 2.0, 3.0).inverse(),
            OneQubitKind::U(-1.0, -3.0, -2.0)
        );
    }

    #[test]
    fn cnot_qubits_ordered_control_first() {
        let g = Gate::cnot(3, 1);
        assert_eq!(g.qubits(), vec![3, 1]);
        assert!(g.is_cnot());
        assert!(g.is_two_qubit());
        assert!(g.is_costed());
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cnot_rejects_equal_qubits() {
        let _ = Gate::cnot(2, 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn swap_rejects_equal_qubits() {
        let _ = Gate::swap(1, 1);
    }

    #[test]
    fn acts_on_checks_all_operands() {
        let g = Gate::cnot(0, 2);
        assert!(g.acts_on(0));
        assert!(!g.acts_on(1));
        assert!(g.acts_on(2));
        let b = Gate::Barrier(vec![1, 3]);
        assert!(b.acts_on(3));
        assert!(!b.acts_on(0));
        assert!(!b.is_costed());
    }

    #[test]
    fn map_qubits_rewrites_operands() {
        let g = Gate::cnot(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g, Gate::cnot(10, 11));
        let m = Gate::Measure { qubit: 2, clbit: 5 }.map_qubits(|q| q * 2);
        assert_eq!(m, Gate::Measure { qubit: 4, clbit: 5 });
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Gate::cnot(1, 0).to_string(), "CNOT q1, q0");
        assert_eq!(Gate::one(OneQubitKind::H, 2).to_string(), "H q2");
        assert_eq!(
            Gate::Measure { qubit: 0, clbit: 0 }.to_string(),
            "measure q0 -> c0"
        );
    }
}
