//! Gate dependency DAG.
//!
//! Two gates depend on each other iff they share a qubit; the DAG edges go
//! from each gate to the *next* gate on each of its qubits. The DAG drives
//! ASAP layering and is exposed for downstream schedulers.

use std::collections::HashMap;

use crate::circuit::Circuit;

/// A node of the dependency DAG (one per gate).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagNode {
    /// Indices of gates this gate directly depends on.
    pub predecessors: Vec<usize>,
    /// Indices of gates directly depending on this gate.
    pub successors: Vec<usize>,
    /// ASAP level (0-based).
    pub level: usize,
}

/// Dependency DAG over the gates of a [`Circuit`].
///
/// ```
/// use qxmap_circuit::{Circuit, Dag};
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 2);
/// c.h(0);
/// let dag = Dag::new(&c);
/// assert_eq!(dag.node(1).predecessors, vec![0]); // shares q1 with gate 0
/// assert_eq!(dag.node(2).predecessors, vec![0]); // shares q0 with gate 0
/// assert_eq!(dag.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dag {
    nodes: Vec<DagNode>,
}

impl Dag {
    /// Builds the DAG of `circuit`.
    pub fn new(circuit: &Circuit) -> Dag {
        let n = circuit.gates().len();
        let mut nodes = vec![DagNode::default(); n];
        // Last gate seen on each qubit.
        let mut frontier: HashMap<usize, usize> = HashMap::new();
        for (idx, gate) in circuit.gates().iter().enumerate() {
            let mut level = 0;
            for q in gate.qubits() {
                if let Some(&prev) = frontier.get(&q) {
                    if !nodes[idx].predecessors.contains(&prev) {
                        nodes[idx].predecessors.push(prev);
                        nodes[prev].successors.push(idx);
                    }
                    level = level.max(nodes[prev].level + 1);
                }
                frontier.insert(q, idx);
            }
            nodes[idx].level = level;
        }
        Dag { nodes }
    }

    /// The node for gate `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node(&self, idx: usize) -> &DagNode {
        &self.nodes[idx]
    }

    /// ASAP level of gate `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn level(&self, idx: usize) -> usize {
        self.nodes[idx].level
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of ASAP levels (equals circuit depth for barrier-free
    /// circuits).
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.level + 1).max().unwrap_or(0)
    }

    /// Gates with no predecessors.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].predecessors.is_empty())
            .collect()
    }

    /// Gates with no successors.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].successors.is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::paper_example;

    #[test]
    fn chain_has_linear_dag() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        c.h(0);
        let dag = Dag::new(&c);
        assert_eq!(dag.roots(), vec![0]);
        assert_eq!(dag.leaves(), vec![2]);
        assert_eq!(dag.depth(), 3);
    }

    #[test]
    fn parallel_gates_have_no_edges() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        let dag = Dag::new(&c);
        assert_eq!(dag.roots(), vec![0, 1]);
        assert!(dag.node(1).predecessors.is_empty());
        assert_eq!(dag.depth(), 1);
    }

    #[test]
    fn no_duplicate_edges_for_shared_pairs() {
        // Two CNOTs on the same qubit pair share both qubits; the edge must
        // be recorded once.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(1, 0);
        let dag = Dag::new(&c);
        assert_eq!(dag.node(1).predecessors, vec![0]);
        assert_eq!(dag.node(0).successors, vec![1]);
    }

    #[test]
    fn paper_example_depth_matches_circuit() {
        let c = paper_example();
        assert_eq!(Dag::new(&c).depth(), c.depth());
    }

    #[test]
    fn empty_dag() {
        let dag = Dag::new(&Circuit::new(3));
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.len(), 0);
    }
}
