//! Qubit interaction graph.
//!
//! Counts how often each (unordered) pair of logical qubits interacts via a
//! two-qubit gate. Mapping heuristics use this to choose initial layouts and
//! the exact mapper's subset filter uses it to prune physical-qubit subsets
//! that cannot host the interaction structure.

use std::collections::BTreeMap;

use crate::circuit::Circuit;

/// Weighted undirected interaction graph of a circuit.
///
/// ```
/// use qxmap_circuit::{Circuit, InteractionGraph};
/// let mut c = Circuit::new(3);
/// c.cx(0, 1);
/// c.cx(1, 0);
/// c.cx(1, 2);
/// let g = InteractionGraph::new(&c);
/// assert_eq!(g.weight(0, 1), 2);
/// assert_eq!(g.weight(2, 1), 1);
/// assert_eq!(g.weight(0, 2), 0);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InteractionGraph {
    num_qubits: usize,
    weights: BTreeMap<(usize, usize), usize>,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit` (CNOTs and SWAPs count).
    pub fn new(circuit: &Circuit) -> InteractionGraph {
        let mut weights = BTreeMap::new();
        for gate in circuit.gates() {
            if gate.is_two_qubit() {
                let qs = gate.qubits();
                let key = (qs[0].min(qs[1]), qs[0].max(qs[1]));
                *weights.entry(key).or_insert(0) += 1;
            }
        }
        InteractionGraph {
            num_qubits: circuit.num_qubits(),
            weights,
        }
    }

    /// Number of qubits in the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Interaction count between `a` and `b` (order-insensitive).
    pub fn weight(&self, a: usize, b: usize) -> usize {
        let key = (a.min(b), a.max(b));
        self.weights.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct partners of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.weights
            .keys()
            .filter(|(a, b)| *a == q || *b == q)
            .count()
    }

    /// Iterator over `((a, b), count)` pairs with `a < b`.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.weights.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct interacting pairs.
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// Qubits that take part in at least one two-qubit gate.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut active = vec![false; self.num_qubits];
        for &(a, b) in self.weights.keys() {
            active[a] = true;
            active[b] = true;
        }
        (0..self.num_qubits).filter(|&q| active[q]).collect()
    }

    /// Maximum number of distinct partners over all qubits. If this exceeds
    /// the maximum degree of a device's coupling graph, no SWAP-free mapping
    /// can exist — a cheap necessary-condition check.
    pub fn max_degree(&self) -> usize {
        (0..self.num_qubits)
            .map(|q| self.degree(q))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::paper_example;

    #[test]
    fn paper_example_interactions() {
        let g = InteractionGraph::new(&paper_example());
        // Skeleton: (2,3) (0,1) (1,2) (0,2) (2,0)
        assert_eq!(g.weight(0, 1), 1);
        assert_eq!(g.weight(1, 2), 1);
        assert_eq!(g.weight(0, 2), 2);
        assert_eq!(g.weight(2, 3), 1);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 3); // q3 touches q1, q2 and q4
    }

    #[test]
    fn swaps_count_as_interactions() {
        let mut c = Circuit::new(2);
        c.swap_gate(0, 1);
        let g = InteractionGraph::new(&c);
        assert_eq!(g.weight(0, 1), 1);
    }

    #[test]
    fn single_qubit_gates_do_not_count() {
        let mut c = Circuit::new(2);
        c.h(0).x(1);
        let g = InteractionGraph::new(&c);
        assert_eq!(g.num_edges(), 0);
        assert!(g.active_qubits().is_empty());
    }

    #[test]
    fn active_qubits_skips_idle() {
        let mut c = Circuit::new(5);
        c.cx(1, 3);
        let g = InteractionGraph::new(&c);
        assert_eq!(g.active_qubits(), vec![1, 3]);
    }
}
