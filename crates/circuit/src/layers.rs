//! Clustering a circuit into layers of gates acting on disjoint qubits.
//!
//! Section 4.2 of the paper ("Disjoint qubits") exploits the fact that gates
//! acting on disjoint sets of qubits can always be mapped without
//! intermediate permutations, so the circuit is clustered into sequences of
//! gates over disjoint qubit sets and layout changes are only allowed before
//! each sequence. Footnote 7 notes that heuristic mappers call such a
//! cluster a *layer*.

use std::collections::BTreeSet;

use crate::circuit::Circuit;
use crate::dag::Dag;

/// A layer: indices (into [`Circuit::gates`]) of gates acting on pairwise
/// disjoint qubit sets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layer {
    /// Gate indices in original circuit order.
    pub gates: Vec<usize>,
    /// The union of qubits touched by the layer.
    pub qubits: BTreeSet<usize>,
}

impl Layer {
    /// Whether the layer shares a qubit with `qubits`.
    fn overlaps(&self, qubits: &[usize]) -> bool {
        qubits.iter().any(|q| self.qubits.contains(q))
    }
}

/// Sequential (order-preserving) clustering: walk the gate list and start a
/// new layer whenever the next gate shares a qubit with the current layer.
///
/// This is the clustering described in Section 4.2: it never reorders gates,
/// so permutations allowed "before each sequence" are sound irrespective of
/// gate commutation.
///
/// ```
/// use qxmap_circuit::{paper_example, sequential_layers};
/// // Fig. 1b: g1=CNOT(2,3) and g2=CNOT(0,1) act on disjoint qubits and fuse;
/// // g3, g4, g5 each clash with their predecessor.
/// let skel = paper_example().without_single_qubit_gates();
/// let layers = sequential_layers(&skel);
/// let sizes: Vec<usize> = layers.iter().map(|l| l.gates.len()).collect();
/// assert_eq!(sizes, vec![2, 1, 1, 1]);
/// ```
pub fn sequential_layers(circuit: &Circuit) -> Vec<Layer> {
    let mut layers: Vec<Layer> = Vec::new();
    for (idx, gate) in circuit.gates().iter().enumerate() {
        let qs = gate.qubits();
        let start_new = match layers.last() {
            None => true,
            Some(layer) => layer.overlaps(&qs),
        };
        if start_new {
            layers.push(Layer::default());
        }
        let layer = layers.last_mut().expect("layer exists");
        layer.gates.push(idx);
        layer.qubits.extend(qs);
    }
    layers
}

/// As-soon-as-possible layering driven by the dependency DAG: each gate is
/// placed at level `1 + max(level of predecessors)`. This may *reorder*
/// independent gates into the same layer even when they are far apart in the
/// gate list, matching what heuristic mappers (e.g. Qiskit's swap mapper)
/// operate on.
///
/// ```
/// use qxmap_circuit::{asap_layers, Circuit};
/// let mut c = Circuit::new(4);
/// c.cx(0, 1);
/// c.cx(0, 2); // depends on the first gate
/// c.cx(1, 3); // also depends on the first gate, parallel to the second
/// let layers = asap_layers(&c);
/// assert_eq!(layers.len(), 2);
/// assert_eq!(layers[1].gates, vec![1, 2]);
/// ```
pub fn asap_layers(circuit: &Circuit) -> Vec<Layer> {
    let dag = Dag::new(circuit);
    let mut layers: Vec<Layer> = Vec::new();
    for (idx, gate) in circuit.gates().iter().enumerate() {
        let level = dag.level(idx);
        while layers.len() <= level {
            layers.push(Layer::default());
        }
        layers[level].gates.push(idx);
        layers[level].qubits.extend(gate.qubits());
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::paper_example;

    #[test]
    fn sequential_layers_cover_all_gates_in_order() {
        let c = paper_example();
        let layers = sequential_layers(&c);
        let flat: Vec<usize> = layers.iter().flat_map(|l| l.gates.clone()).collect();
        assert_eq!(flat, (0..c.gates().len()).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_layers_are_disjoint_within() {
        let c = paper_example();
        for layer in sequential_layers(&c) {
            let mut seen = BTreeSet::new();
            for &g in &layer.gates {
                for q in c.gates()[g].qubits() {
                    assert!(seen.insert(q), "layer reuses qubit {q}");
                }
            }
        }
    }

    #[test]
    fn paper_example_disjoint_clustering() {
        // Example 10: "G' = {g3, g4, g5}, since g1 and g2 operate on disjoint
        // qubits" — i.e. the CNOT skeleton clusters as [g1 g2][g3][g4][g5].
        let skel = paper_example().without_single_qubit_gates();
        let layers = sequential_layers(&skel);
        assert_eq!(layers.len(), 4);
        assert_eq!(layers[0].gates, vec![0, 1]);
    }

    #[test]
    fn asap_layer_count_equals_depth() {
        let c = paper_example();
        assert_eq!(asap_layers(&c).len(), c.depth());
    }

    #[test]
    fn empty_circuit_has_no_layers() {
        let c = Circuit::new(3);
        assert!(sequential_layers(&c).is_empty());
        assert!(asap_layers(&c).is_empty());
    }

    #[test]
    fn single_gate_is_single_layer() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        assert_eq!(sequential_layers(&c).len(), 1);
        assert_eq!(asap_layers(&c).len(), 1);
    }
}
