//! # qxmap-circuit
//!
//! Quantum circuit intermediate representation used throughout the `qxmap`
//! workspace.
//!
//! The model follows Definition 1 of Wille, Burgholzer & Zulehner,
//! *"Mapping Quantum Circuits to IBM QX Architectures Using the Minimal
//! Number of SWAP and H Operations"* (DAC 2019): a circuit is a sequence of
//! gates, each of which is either a single-qubit gate `U(q_j)` or a
//! controlled-NOT `CNOT(q_c, q_t)`. For practical interoperability the IR
//! additionally models SWAP gates, barriers and measurements, which the
//! mapping algorithms treat transparently.
//!
//! ## Example
//!
//! Build the running example of the paper (Fig. 1a): a 4-qubit circuit with
//! 8 gates.
//!
//! ```
//! use qxmap_circuit::Circuit;
//!
//! let mut c = Circuit::new(4);
//! c.cx(2, 3); // g1
//! c.h(2);
//! c.t(0);
//! c.cx(0, 1); // g2
//! c.h(1);
//! c.cx(1, 2); // g3
//! c.cx(0, 2); // g4
//! c.cx(2, 0); // g5
//! assert_eq!(c.num_qubits(), 4);
//! assert_eq!(c.num_cnots(), 5);
//! assert_eq!(c.num_single_qubit_gates(), 3);
//! assert_eq!(c.original_cost(), 8);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod circuit;
mod dag;
mod draw;
mod gate;
mod interaction;
mod layers;
mod skeleton;

pub use circuit::{paper_example, Circuit, CircuitError, CircuitStats};
pub use dag::{Dag, DagNode};
pub use draw::draw;
pub use gate::{Gate, OneQubitKind};
pub use interaction::InteractionGraph;
pub use layers::{asap_layers, sequential_layers, Layer};
pub use skeleton::{CircuitSkeleton, SkeletonBuilder};
