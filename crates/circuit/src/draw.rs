//! ASCII circuit diagrams in the style of the paper's figures.
//!
//! Single-qubit gates render as `[H]`, CNOT controls as `*`, targets as
//! `(+)`, SWaps as `x`, with `|` connectors — one column per depth slot:
//!
//! ```text
//! q0: ─[T]──*────*───*─
//! q1: ──────(+)──|──(+)
//! q2: ──*──[H]──(+)───
//! q3: ─(+)────────────
//! ```

use crate::circuit::Circuit;
use crate::gate::Gate;

const WIRE: char = '\u{2500}'; // ─

/// Renders the circuit as a multi-line ASCII diagram.
///
/// ```
/// use qxmap_circuit::{draw, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let art = draw(&c);
/// assert!(art.contains("[H]"));
/// assert!(art.contains("(+)"));
/// ```
pub fn draw(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    if n == 0 {
        return String::new();
    }
    // Assign each gate a column: ASAP scheduling by qubit occupancy.
    let mut col_of = Vec::with_capacity(circuit.gates().len());
    let mut next_free = vec![0usize; n];
    let mut num_cols = 0;
    for gate in circuit.gates() {
        let qs = gate.qubits();
        // Multi-qubit gates block the whole vertical span to keep connectors clear.
        let (lo, hi) = span(&qs, n);
        let col = (lo..=hi).map(|q| next_free[q]).max().unwrap_or(0);
        for slot in next_free.iter_mut().take(hi + 1).skip(lo) {
            *slot = col + 1;
        }
        col_of.push(col);
        num_cols = num_cols.max(col + 1);
    }

    // cells[q][col] = rendered token.
    let mut cells: Vec<Vec<String>> = vec![vec![String::new(); num_cols]; n];
    let mut connect: Vec<Vec<bool>> = vec![vec![false; num_cols]; n];
    for (idx, gate) in circuit.gates().iter().enumerate() {
        let col = col_of[idx];
        match gate {
            Gate::One { kind, qubit } => {
                cells[*qubit][col] = format!("[{}]", kind.label());
            }
            Gate::Cnot { control, target } => {
                cells[*control][col] = "*".to_string();
                cells[*target][col] = "(+)".to_string();
                mark_connectors(&mut connect, *control, *target, col);
            }
            Gate::Swap { a, b } => {
                cells[*a][col] = "x".to_string();
                cells[*b][col] = "x".to_string();
                mark_connectors(&mut connect, *a, *b, col);
            }
            Gate::Barrier(qs) => {
                for &q in qs {
                    cells[q][col] = "░".to_string();
                }
            }
            Gate::Measure { qubit, .. } => {
                cells[*qubit][col] = "[M]".to_string();
            }
        }
    }

    // Column widths.
    let mut widths = vec![1usize; num_cols];
    for row in &cells {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    for q in 0..n {
        out.push_str(&format!("q{q:<2}: "));
        for c in 0..num_cols {
            let w = widths[c] + 2;
            let cell = &cells[q][c];
            let filler = if connect[q][c] && cell.is_empty() {
                center("|", w, WIRE)
            } else if cell.is_empty() {
                WIRE.to_string().repeat(w)
            } else {
                center(cell, w, WIRE)
            };
            out.push_str(&filler);
        }
        out.push('\n');
    }
    out
}

fn span(qs: &[usize], n: usize) -> (usize, usize) {
    let lo = qs.iter().copied().min().unwrap_or(0).min(n - 1);
    let hi = qs.iter().copied().max().unwrap_or(0).min(n - 1);
    (lo, hi)
}

fn mark_connectors(connect: &mut [Vec<bool>], a: usize, b: usize, col: usize) {
    let (lo, hi) = (a.min(b), a.max(b));
    for row in connect.iter_mut().take(hi).skip(lo + 1) {
        row[col] = true;
    }
}

fn center(s: &str, width: usize, pad: char) -> String {
    let len = s.chars().count();
    if len >= width {
        return s.to_string();
    }
    let left = (width - len) / 2;
    let right = width - len - left;
    let mut out = String::new();
    for _ in 0..left {
        out.push(pad);
    }
    out.push_str(s);
    for _ in 0..right {
        out.push(pad);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::paper_example;

    #[test]
    fn draws_every_qubit_line() {
        let art = draw(&paper_example());
        assert_eq!(art.lines().count(), 4);
        for q in 0..4 {
            assert!(art.contains(&format!("q{q}")));
        }
    }

    #[test]
    fn renders_controls_and_targets() {
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].contains("(+)"));
        assert!(lines[1].contains('*'));
    }

    #[test]
    fn connector_crosses_middle_qubit() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let art = draw(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[1].contains('|'));
    }

    #[test]
    fn empty_circuit_draws_nothing() {
        assert_eq!(draw(&Circuit::new(0)), "");
    }

    #[test]
    fn measure_and_barrier_render() {
        let mut c = Circuit::with_clbits(2, 2);
        c.barrier();
        c.measure(0, 0);
        let art = draw(&c);
        assert!(art.contains('░'));
        assert!(art.contains("[M]"));
    }
}
