//! Canonical, qubit-relabel-invariant circuit skeletons.
//!
//! The paper frames mapping cost as a function of the circuit's
//! *interaction structure* and the device's coupling graph alone: renaming
//! the logical registers changes nothing about how expensive a circuit is
//! to map, nor about the physical circuit a mapper produces. That makes
//! the canonical skeleton the natural key for whole-solve result caches —
//! two QASM files with renamed registers but the same gate structure hash
//! to the same entry, and a cached physical result can be re-served after
//! translating its layouts through the register correspondence.
//!
//! [`CircuitSkeleton`] canonicalizes a circuit by renaming qubits in
//! order of first appearance in the gate list (idle qubits take the
//! remaining labels in index order). Two circuits have equal skeletons
//! iff one is the other with qubits renamed — same gate kinds, same
//! order, same classical bits; circuit *names* are ignored. The CNOT
//! structure (what the symbolic formulation actually maps, Definition 4)
//! is therefore shared, and so is everything a [`crate::Circuit`]-level
//! mapping result embeds (single-qubit gates travel along relabeled).

use std::hash::{Hash, Hasher};

use crate::circuit::Circuit;
use crate::gate::{Gate, OneQubitKind};

/// The canonical form of a circuit under qubit relabeling.
///
/// Equality and hashing consider only the canonical gate stream (plus
/// the register sizes). Equal skeletons *guarantee* the circuits are
/// relabelings of each other (a match is never wrong — the direction
/// result caches rely on), and renamings of a circuit compare equal in
/// all but one conservative corner: when a qubit's *first* appearance is
/// inside a barrier, label assignment follows the barrier's stored
/// operand order, so two renamings listing those operands differently
/// may compare unequal — a harmless missed match, since barriers are
/// operand-order-insensitive sets:
///
/// ```
/// use qxmap_circuit::{Circuit, CircuitSkeleton};
///
/// let mut a = Circuit::new(3);
/// a.cx(0, 1).h(1).cx(1, 2);
/// // The same circuit with registers renamed q0→q2, q1→q0, q2→q1.
/// let mut b = Circuit::new(3);
/// b.cx(2, 0).h(0).cx(0, 1);
/// assert_eq!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&b));
/// assert_eq!(
///     CircuitSkeleton::of(&a).fingerprint(),
///     CircuitSkeleton::of(&b).fingerprint(),
/// );
///
/// // A structurally different circuit does not collide.
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).t(1).cx(1, 2);
/// assert_ne!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&c));
/// ```
#[derive(Debug, Clone)]
pub struct CircuitSkeleton {
    num_qubits: usize,
    num_clbits: usize,
    /// The canonical gate stream, encoded as tokens (gate tags, canonical
    /// qubit labels, angle bit patterns). Two circuits are relabelings of
    /// each other iff their token streams (and register sizes) agree.
    tokens: Vec<u64>,
    /// `canon[q]` is the canonical label of original qubit `q`.
    canon: Vec<usize>,
}

impl CircuitSkeleton {
    /// Computes the canonical skeleton of `circuit`.
    ///
    /// Qubits are renamed by first appearance scanning the gate list in
    /// order (for a CNOT the control is visited before the target); idle
    /// qubits take the remaining labels in ascending index order, so
    /// circuits that differ only in *which* qubits idle still match.
    pub fn of(circuit: &Circuit) -> CircuitSkeleton {
        let mut builder = SkeletonBuilder::new(circuit.num_qubits(), circuit.num_clbits());
        for gate in circuit.gates() {
            builder.push(gate);
        }
        builder.finish()
    }

    /// Number of logical qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits of the underlying circuit.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The relabeling this canonicalization applied: entry `q` is the
    /// canonical label of the underlying circuit's qubit `q`. A
    /// permutation of `0..num_qubits`.
    pub fn canonical_labels(&self) -> &[usize] {
        &self.canon
    }

    /// The canonical token stream — the raw form behind equality,
    /// hashing and [`CircuitSkeleton::fingerprint`]. Exposed (together
    /// with [`CircuitSkeleton::from_parts`]) so external stores can
    /// persist skeletons byte-for-byte and reconstruct them in another
    /// process; the encoding is stable for a given snapshot version.
    pub fn tokens(&self) -> &[u64] {
        &self.tokens
    }

    /// Rebuilds a skeleton from persisted raw parts: the register sizes,
    /// the canonical token stream, and the canonicalization's label
    /// permutation (`canonical_labels[q]` = canonical label of original
    /// qubit `q`).
    ///
    /// Returns `None` unless `canonical_labels` is a permutation of
    /// `0..num_qubits` — the structural invariant every consumer
    /// (correspondence translation, layout remapping) relies on. The
    /// token stream itself is taken as-is: it only ever participates in
    /// equality and hashing, so a corrupted stream yields a key that
    /// matches nothing, never an out-of-bounds access. Callers keep an
    /// end-to-end checksum over persisted skeletons (as the solve-cache
    /// snapshot format does) to reject accidental corruption outright.
    pub fn from_parts(
        num_qubits: usize,
        num_clbits: usize,
        tokens: Vec<u64>,
        canonical_labels: Vec<usize>,
    ) -> Option<CircuitSkeleton> {
        if canonical_labels.len() != num_qubits {
            return None;
        }
        let mut seen = vec![false; num_qubits];
        for &l in &canonical_labels {
            if l >= num_qubits || seen[l] {
                return None;
            }
            seen[l] = true;
        }
        Some(CircuitSkeleton {
            num_qubits,
            num_clbits,
            tokens,
            canon: canonical_labels,
        })
    }

    /// A stable 64-bit digest of the canonical form (FNV-1a over the
    /// register sizes and the token stream). Equal skeletons have equal
    /// fingerprints; the fingerprint does not depend on process, platform
    /// or run.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_qubits as u64);
        mix(self.num_clbits as u64);
        for &t in &self.tokens {
            mix(t);
        }
        h
    }

    /// The qubit correspondence between this skeleton's circuit and
    /// `solved`'s circuit: `result[q]` is the qubit of `solved`'s circuit
    /// playing the role of this circuit's qubit `q`. Returns `None` when
    /// the canonical forms differ (the circuits are not relabelings of
    /// each other).
    ///
    /// This is what lets a cached mapping result answer a renamed-register
    /// request: the solved physical circuit is reused as-is and its
    /// logical→physical layouts are read through the correspondence.
    ///
    /// ```
    /// use qxmap_circuit::{Circuit, CircuitSkeleton};
    ///
    /// let mut solved = Circuit::new(2);
    /// solved.cx(0, 1);
    /// let mut renamed = Circuit::new(2);
    /// renamed.cx(1, 0);
    /// let sigma = CircuitSkeleton::of(&renamed)
    ///     .correspondence_to(&CircuitSkeleton::of(&solved))
    ///     .expect("same structure");
    /// // `renamed`'s q1 (the control) plays `solved`'s q0's role.
    /// assert_eq!(sigma, vec![1, 0]);
    /// ```
    pub fn correspondence_to(&self, solved: &CircuitSkeleton) -> Option<Vec<usize>> {
        if self != solved {
            return None;
        }
        // canonical label -> solved original qubit.
        let mut from_label = vec![0usize; solved.num_qubits];
        for (q, &l) in solved.canon.iter().enumerate() {
            from_label[l] = q;
        }
        Some(self.canon.iter().map(|&l| from_label[l]).collect())
    }
}

/// Streaming construction of a [`CircuitSkeleton`], one gate at a time.
///
/// This is the canonicalization behind [`CircuitSkeleton::of`], exposed
/// so front-ends (the QASM parser, binary circuit decoders) can compute
/// a skeleton *during* their single pass over the gate stream without
/// materializing a [`Circuit`] first — the entry ticket to fingerprint
/// cache probes that skip circuit construction entirely on a warm hit.
/// Feeding the builder a circuit's gates in order produces a skeleton
/// identical to `CircuitSkeleton::of` (which is itself implemented on
/// top of this builder):
///
/// ```
/// use qxmap_circuit::{Circuit, CircuitSkeleton, SkeletonBuilder};
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 1).h(1).cx(1, 2);
/// let mut b = SkeletonBuilder::new(c.num_qubits(), c.num_clbits());
/// for gate in c.gates() {
///     b.push(gate);
/// }
/// assert_eq!(b.finish(), CircuitSkeleton::of(&c));
/// ```
///
/// The builder does not validate gates against the register sizes; feed
/// it the same gate stream a [`Circuit`] would accept.
#[derive(Debug, Clone)]
pub struct SkeletonBuilder {
    num_qubits: usize,
    num_clbits: usize,
    tokens: Vec<u64>,
    canon: Vec<Option<usize>>,
    next: usize,
}

impl SkeletonBuilder {
    /// Starts a skeleton for a circuit with the given register sizes.
    pub fn new(num_qubits: usize, num_clbits: usize) -> SkeletonBuilder {
        SkeletonBuilder {
            num_qubits,
            num_clbits,
            tokens: Vec::new(),
            canon: vec![None; num_qubits],
            next: 0,
        }
    }

    /// Canonical label of original qubit `q`, assigned on first
    /// appearance.
    fn label(&mut self, q: usize) -> u64 {
        let next = &mut self.next;
        let l = *self.canon[q].get_or_insert_with(|| {
            let l = *next;
            *next += 1;
            l
        });
        l as u64
    }

    /// Appends the next gate of the stream to the canonical form.
    pub fn push(&mut self, gate: &Gate) {
        match gate {
            Gate::One { kind, qubit } => {
                self.tokens.push(1);
                encode_kind(kind, &mut self.tokens);
                let l = self.label(*qubit);
                self.tokens.push(l);
            }
            Gate::Cnot { control, target } => {
                self.tokens.push(2);
                let c = self.label(*control);
                let t = self.label(*target);
                self.tokens.push(c);
                self.tokens.push(t);
            }
            Gate::Swap { a, b } => {
                // A SWAP is symmetric as an operation but its stored
                // operand order fixes its CNOT decomposition, so the
                // order is kept.
                self.tokens.push(3);
                let a = self.label(*a);
                let b = self.label(*b);
                self.tokens.push(a);
                self.tokens.push(b);
            }
            Gate::Barrier(qs) => {
                // A barrier is a *set* of qubits: labels are assigned in
                // stored order (deterministic) but emitted sorted, so
                // operand order is irrelevant.
                self.tokens.push(4);
                self.tokens.push(qs.len() as u64);
                let mut labels: Vec<u64> = qs.iter().map(|&q| self.label(q)).collect();
                labels.sort_unstable();
                self.tokens.extend(labels);
            }
            Gate::Measure { qubit, clbit } => {
                self.tokens.push(5);
                let l = self.label(*qubit);
                self.tokens.push(l);
                self.tokens.push(*clbit as u64);
            }
        }
    }

    /// Completes the canonicalization: idle qubits take the remaining
    /// labels in ascending index order.
    pub fn finish(self) -> CircuitSkeleton {
        let mut next = self.next;
        let canon = self
            .canon
            .into_iter()
            .map(|l| {
                l.unwrap_or_else(|| {
                    let l = next;
                    next += 1;
                    l
                })
            })
            .collect();
        CircuitSkeleton {
            num_qubits: self.num_qubits,
            num_clbits: self.num_clbits,
            tokens: self.tokens,
            canon,
        }
    }
}

impl PartialEq for CircuitSkeleton {
    fn eq(&self, other: &CircuitSkeleton) -> bool {
        // `canon` is bookkeeping about the *input* labels, not part of
        // the canonical form.
        self.num_qubits == other.num_qubits
            && self.num_clbits == other.num_clbits
            && self.tokens == other.tokens
    }
}

impl Eq for CircuitSkeleton {}

impl Hash for CircuitSkeleton {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num_qubits.hash(state);
        self.num_clbits.hash(state);
        self.tokens.hash(state);
    }
}

/// Encodes a single-qubit gate kind (tag + angle bit patterns) into the
/// token stream. Angles compare by bit pattern: a near-miss in the last
/// ulp is a cache miss, never a wrong hit.
fn encode_kind(kind: &OneQubitKind, tokens: &mut Vec<u64>) {
    let (tag, angles): (u64, &[f64]) = match kind {
        OneQubitKind::I => (0, &[]),
        OneQubitKind::X => (1, &[]),
        OneQubitKind::Y => (2, &[]),
        OneQubitKind::Z => (3, &[]),
        OneQubitKind::H => (4, &[]),
        OneQubitKind::S => (5, &[]),
        OneQubitKind::Sdg => (6, &[]),
        OneQubitKind::T => (7, &[]),
        OneQubitKind::Tdg => (8, &[]),
        OneQubitKind::Rx(a) => (9, std::slice::from_ref(a)),
        OneQubitKind::Ry(a) => (10, std::slice::from_ref(a)),
        OneQubitKind::Rz(a) => (11, std::slice::from_ref(a)),
        OneQubitKind::Phase(a) => (12, std::slice::from_ref(a)),
        OneQubitKind::U(t, p, l) => {
            tokens.push(13);
            tokens.push(t.to_bits());
            tokens.push(p.to_bits());
            tokens.push(l.to_bits());
            return;
        }
    };
    tokens.push(tag);
    for a in angles {
        tokens.push(a.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::paper_example;

    /// The paper example with its registers permuted through `sigma`
    /// (original qubit q appears as sigma[q]).
    fn relabeled(circuit: &Circuit, sigma: &[usize]) -> Circuit {
        circuit.map_qubits(circuit.num_qubits(), |q| sigma[q])
    }

    #[test]
    fn relabeling_preserves_the_skeleton() {
        let c = paper_example();
        let base = CircuitSkeleton::of(&c);
        for sigma in [[1, 0, 2, 3], [3, 2, 1, 0], [2, 3, 0, 1], [1, 2, 3, 0]] {
            let r = relabeled(&c, &sigma);
            let skel = CircuitSkeleton::of(&r);
            assert_eq!(base, skel, "{sigma:?}");
            assert_eq!(base.fingerprint(), skel.fingerprint(), "{sigma:?}");
        }
    }

    #[test]
    fn gate_structure_differences_are_detected() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        // Reversed CNOT: same interaction pair, different structure.
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_eq!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&b));
        // ... because relabeling q0↔q1 maps one onto the other. A second
        // gate pins the labels and separates them:
        a.h(0);
        let mut c = Circuit::new(2);
        c.cx(1, 0);
        c.h(0);
        assert_ne!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&c));
    }

    #[test]
    fn single_qubit_gate_kinds_and_angles_matter() {
        let mut a = Circuit::new(1);
        a.rx(0.5, 0);
        let mut b = Circuit::new(1);
        b.rx(0.5, 0);
        let mut c = Circuit::new(1);
        c.rx(0.25, 0);
        let mut d = Circuit::new(1);
        d.ry(0.5, 0);
        assert_eq!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&b));
        assert_ne!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&c));
        assert_ne!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&d));
    }

    #[test]
    fn names_and_idle_qubit_choice_are_ignored() {
        let mut a = Circuit::new(3).named("left");
        a.cx(0, 1); // q2 idle
        let mut b = Circuit::new(3).named("right");
        b.cx(1, 2); // q0 idle
        assert_eq!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&b));
        // Register sizes still matter.
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        assert_ne!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&c));
    }

    #[test]
    fn clbits_and_measurements_are_part_of_the_form() {
        let mut a = Circuit::with_clbits(2, 2);
        a.cx(0, 1);
        a.measure(0, 0);
        let mut b = Circuit::with_clbits(2, 2);
        b.cx(0, 1);
        b.measure(0, 1);
        assert_ne!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&b));
    }

    #[test]
    fn correspondence_recovers_the_relabeling() {
        let c = paper_example();
        let solved = CircuitSkeleton::of(&c);
        let sigma = [2usize, 0, 3, 1];
        let r = relabeled(&c, &sigma);
        let corr = CircuitSkeleton::of(&r)
            .correspondence_to(&solved)
            .expect("relabelings correspond");
        // r's qubit sigma[q] plays c's qubit q's role: corr[sigma[q]] == q.
        for (q, &s) in sigma.iter().enumerate() {
            assert_eq!(corr[s], q);
        }
        // Non-matching structures have no correspondence.
        let mut other = Circuit::new(4);
        other.cx(0, 1);
        assert!(CircuitSkeleton::of(&other)
            .correspondence_to(&solved)
            .is_none());
    }

    #[test]
    fn barriers_and_swaps_tokenize() {
        let mut a = Circuit::new(3);
        a.swap_gate(0, 1);
        a.barrier();
        let mut b = Circuit::new(3);
        b.swap_gate(1, 0); // operand order fixes the decomposition
        b.barrier();
        assert_eq!(CircuitSkeleton::of(&a), CircuitSkeleton::of(&b));
        let skel = CircuitSkeleton::of(&a);
        assert_eq!(skel.num_qubits(), 3);
        assert_eq!(skel.canonical_labels().len(), 3);
    }

    #[test]
    fn raw_parts_round_trip_and_validate() {
        let c = paper_example();
        let skel = CircuitSkeleton::of(&c);
        let rebuilt = CircuitSkeleton::from_parts(
            skel.num_qubits(),
            skel.num_clbits(),
            skel.tokens().to_vec(),
            skel.canonical_labels().to_vec(),
        )
        .expect("round trip");
        assert_eq!(skel, rebuilt);
        assert_eq!(skel.fingerprint(), rebuilt.fingerprint());
        assert_eq!(skel.canonical_labels(), rebuilt.canonical_labels());
        // Non-permutation label vectors are rejected.
        assert!(CircuitSkeleton::from_parts(2, 0, vec![], vec![0, 0]).is_none());
        assert!(CircuitSkeleton::from_parts(2, 0, vec![], vec![0, 2]).is_none());
        assert!(CircuitSkeleton::from_parts(2, 0, vec![], vec![0]).is_none());
    }

    #[test]
    fn streaming_builder_matches_of_gate_by_gate() {
        let mut c = Circuit::with_clbits(4, 2);
        c.cx(2, 0).h(3).swap_gate(1, 3).rx(0.25, 2);
        c.push(Gate::Barrier(vec![3, 0]));
        c.measure(2, 1);
        let mut b = SkeletonBuilder::new(c.num_qubits(), c.num_clbits());
        for gate in c.gates() {
            b.push(gate);
        }
        let streamed = b.finish();
        let whole = CircuitSkeleton::of(&c);
        assert_eq!(streamed, whole);
        assert_eq!(streamed.fingerprint(), whole.fingerprint());
        assert_eq!(streamed.canonical_labels(), whole.canonical_labels());
        // Idle qubits still get labels when no gate was ever pushed.
        let empty = SkeletonBuilder::new(3, 0).finish();
        assert_eq!(empty, CircuitSkeleton::of(&Circuit::new(3)));
        assert_eq!(empty.canonical_labels(), &[0, 1, 2]);
    }

    #[test]
    fn fingerprint_is_deterministic_and_pinned() {
        let c = paper_example();
        assert_eq!(
            CircuitSkeleton::of(&c).fingerprint(),
            CircuitSkeleton::of(&c).fingerprint()
        );
        // Hard-coded pins: fingerprints are documented as stable across
        // processes (external stores may persist them), so any change to
        // the token encoding or the hash mix must fail here and be made
        // deliberately, updating these constants in the same commit.
        let mut t = Circuit::new(2);
        t.cx(0, 1);
        assert_eq!(CircuitSkeleton::of(&t).fingerprint(), 0x11c4962150d872a4);
        assert_eq!(CircuitSkeleton::of(&c).fingerprint(), 0xa995d92c9ca44687);
    }
}
