//! Permutations of physical-qubit states.
//!
//! A [`Permutation`] `π` describes how inserted SWAP operations rearrange
//! the *states* held by the physical qubits (Definition 5): if the logical
//! qubit occupying physical qubit `i` before the SWAP block occupies
//! physical qubit `π(i)` after it, the block realizes `π`.

use std::fmt;

/// A permutation of `{0, …, n−1}`, stored as the image vector
/// (`perm.apply(i) == image[i]`).
///
/// ```
/// use qxmap_arch::Permutation;
///
/// let swap01 = Permutation::transposition(3, 0, 1);
/// assert_eq!(swap01.apply(0), 1);
/// assert_eq!(swap01.apply(2), 2);
/// assert!(swap01.compose(&swap01).is_identity());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Permutation {
    image: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Permutation {
        Permutation {
            image: (0..n).collect(),
        }
    }

    /// Builds a permutation from its image vector.
    ///
    /// # Panics
    ///
    /// Panics if `image` is not a permutation of `0..image.len()`.
    pub fn from_image(image: Vec<usize>) -> Permutation {
        let n = image.len();
        let mut seen = vec![false; n];
        for &v in &image {
            assert!(v < n, "image value {v} out of range");
            assert!(!seen[v], "image value {v} repeated");
            seen[v] = true;
        }
        Permutation { image }
    }

    /// The transposition exchanging `a` and `b` on `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    pub fn transposition(n: usize, a: usize, b: usize) -> Permutation {
        assert!(a < n && b < n && a != b, "invalid transposition");
        let mut image: Vec<usize> = (0..n).collect();
        image.swap(a, b);
        Permutation { image }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.image.len()
    }

    /// Whether the permutation is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.image.is_empty()
    }

    /// Applies the permutation to `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn apply(&self, i: usize) -> usize {
        self.image[i]
    }

    /// The image vector.
    pub fn as_image(&self) -> &[usize] {
        &self.image
    }

    /// Composition `self ∘ other` (apply `other` first):
    /// `(self ∘ other)(i) = self(other(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "length mismatch");
        Permutation {
            image: other.image.iter().map(|&i| self.image[i]).collect(),
        }
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        let mut image = vec![0; self.len()];
        for (i, &v) in self.image.iter().enumerate() {
            image[v] = i;
        }
        Permutation { image }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.image.iter().enumerate().all(|(i, &v)| i == v)
    }

    /// Number of cycles (fixed points count as 1-cycles).
    pub fn num_cycles(&self) -> usize {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut cycles = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            cycles += 1;
            let mut i = start;
            while !seen[i] {
                seen[i] = true;
                i = self.image[i];
            }
        }
        cycles
    }

    /// Minimal number of (arbitrary, not necessarily adjacent)
    /// transpositions whose product equals this permutation:
    /// `n − #cycles`. This is a lower bound on `swaps(π)` for any coupling
    /// graph.
    pub fn min_transpositions(&self) -> usize {
        self.len() - self.num_cycles()
    }

    /// Enumerates all `n!` permutations of `n` elements in lexicographic
    /// order of the image vector.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10` (guard against accidental factorial blow-up).
    pub fn all(n: usize) -> Vec<Permutation> {
        assert!(n <= 10, "refusing to enumerate {n}! permutations");
        let mut out = Vec::new();
        let mut image: Vec<usize> = (0..n).collect();
        loop {
            out.push(Permutation {
                image: image.clone(),
            });
            // next_permutation in lexicographic order
            let Some(i) = (0..n.saturating_sub(1))
                .rev()
                .find(|&i| image[i] < image[i + 1])
            else {
                break;
            };
            let j = (i + 1..n)
                .rev()
                .find(|&j| image[j] > image[i])
                .expect("exists");
            image.swap(i, j);
            image[i + 1..].reverse();
        }
        out
    }

    /// The permutation's action on a layout vector: element at position `i`
    /// moves to position `π(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    pub fn permute<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        let mut out = values.to_vec();
        for (i, v) in values.iter().enumerate() {
            out[self.image[i]] = v.clone();
        }
        out
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Cycle notation; identity prints as "id".
        if self.is_identity() {
            return write!(f, "id");
        }
        let n = self.len();
        let mut seen = vec![false; n];
        for start in 0..n {
            if seen[start] || self.image[start] == start {
                seen[start] = true;
                continue;
            }
            write!(f, "(")?;
            let mut i = start;
            let mut first = true;
            while !seen[i] {
                seen[i] = true;
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{i}")?;
                first = false;
                i = self.image[i];
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let id = Permutation::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.num_cycles(), 4);
        assert_eq!(id.min_transpositions(), 0);
        assert_eq!(id.to_string(), "id");
    }

    #[test]
    fn compose_applies_right_first() {
        // other: 0→1 (transposition 01); self: 1→2 (transposition 12)
        let t01 = Permutation::transposition(3, 0, 1);
        let t12 = Permutation::transposition(3, 1, 2);
        let c = t12.compose(&t01);
        assert_eq!(c.apply(0), 2); // 0 →(t01) 1 →(t12) 2
        assert_eq!(c.apply(1), 0);
        assert_eq!(c.apply(2), 1);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_image(vec![2, 0, 3, 1]);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
    }

    #[test]
    fn cycle_counting() {
        let p = Permutation::from_image(vec![1, 0, 3, 2]); // (01)(23)
        assert_eq!(p.num_cycles(), 2);
        assert_eq!(p.min_transpositions(), 2);
        let three = Permutation::from_image(vec![1, 2, 0]); // (012)
        assert_eq!(three.min_transpositions(), 2);
    }

    #[test]
    fn all_enumerates_factorial_many() {
        assert_eq!(Permutation::all(0).len(), 1);
        assert_eq!(Permutation::all(1).len(), 1);
        assert_eq!(Permutation::all(3).len(), 6);
        assert_eq!(Permutation::all(5).len(), 120);
        // All distinct.
        let all = Permutation::all(4);
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 24);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn from_image_rejects_non_permutation() {
        let _ = Permutation::from_image(vec![0, 0, 1]);
    }

    #[test]
    fn permute_moves_values() {
        let p = Permutation::from_image(vec![1, 2, 0]);
        // value at 0 moves to position 1, etc.
        assert_eq!(p.permute(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
    }

    #[test]
    fn display_cycle_notation() {
        let p = Permutation::from_image(vec![1, 0, 2]);
        assert_eq!(p.to_string(), "(0 1)");
        let q = Permutation::from_image(vec![1, 2, 0]);
        assert_eq!(q.to_string(), "(0 1 2)");
    }
}
