//! Physical-qubit subset enumeration (Section 4.1).
//!
//! When a circuit uses `n < m` logical qubits, the exact mapper may restrict
//! itself to `n` of the `m` physical qubits and try every such subset. Only
//! *connected* subsets can host a mapping; the paper prunes subsets with
//! isolated qubits — we prune every disconnected subset, which subsumes the
//! isolation check and never discards a feasible instance (a CNOT between
//! qubits in different components could never be routed).

use crate::coupling::CouplingMap;

/// Enumerates all size-`size` subsets of physical qubits whose induced
/// subgraph is connected, in lexicographic order.
///
/// Returns the empty vector if `size > m`. For `size == 0` a single empty
/// subset is returned.
///
/// ```
/// use qxmap_arch::{connected_subsets, devices};
///
/// // Example 9 of the paper: of the C(5,4) = 5 subsets of QX4, only the 4
/// // containing the hub p3 (index 2) are connected.
/// let subs = connected_subsets(&devices::ibm_qx4(), 4);
/// assert_eq!(subs.len(), 4);
/// assert!(subs.iter().all(|s| s.contains(&2)));
/// ```
pub fn connected_subsets(cm: &CouplingMap, size: usize) -> Vec<Vec<usize>> {
    let m = cm.num_qubits();
    if size > m {
        return Vec::new();
    }
    if size == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(size);
    combinations(m, size, 0, &mut current, &mut |subset| {
        if cm.is_connected_subset(subset) {
            out.push(subset.to_vec());
        }
    });
    out
}

fn combinations(
    m: usize,
    size: usize,
    start: usize,
    current: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if current.len() == size {
        visit(current);
        return;
    }
    let needed = size - current.len();
    for q in start..=(m - needed) {
        current.push(q);
        combinations(m, size, q + 1, current, visit);
        current.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn full_size_subset_is_whole_device() {
        let cm = devices::ibm_qx4();
        let subs = connected_subsets(&cm, 5);
        assert_eq!(subs, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn qx4_three_subsets() {
        // Connected 3-subsets of QX4: {0,1,2} (triangle), {0,2,3}, {0,2,4},
        // {1,2,3}, {1,2,4}, {2,3,4} (triangle) — all must contain p3=2 ...
        // except none without 2 is connected: {0,1,x}? 0-1 edge exists, but
        // 3 and 4 connect only through 2.
        let subs = connected_subsets(&devices::ibm_qx4(), 3);
        assert_eq!(
            subs,
            vec![
                vec![0, 1, 2],
                vec![0, 2, 3],
                vec![0, 2, 4],
                vec![1, 2, 3],
                vec![1, 2, 4],
                vec![2, 3, 4],
            ]
        );
    }

    #[test]
    fn oversized_requests_are_empty() {
        assert!(connected_subsets(&devices::ibm_qx4(), 6).is_empty());
    }

    #[test]
    fn zero_size_is_single_empty_subset() {
        assert_eq!(
            connected_subsets(&devices::ibm_qx4(), 0),
            vec![Vec::<usize>::new()]
        );
    }

    #[test]
    fn singletons_are_all_connected() {
        let subs = connected_subsets(&devices::ibm_qx4(), 1);
        assert_eq!(subs.len(), 5);
    }

    #[test]
    fn line_subsets_are_intervals() {
        let cm = devices::linear(5);
        let subs = connected_subsets(&cm, 3);
        assert_eq!(subs, vec![vec![0, 1, 2], vec![1, 2, 3], vec![2, 3, 4]]);
    }

    #[test]
    fn counts_match_paper_example8() {
        // Example 8/9: C(5,4)=5 subsets, 4 connected ones on QX4.
        let subs = connected_subsets(&devices::ibm_qx4(), 4);
        assert_eq!(subs.len(), 4);
    }
}
