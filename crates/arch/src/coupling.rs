//! The coupling map of Definition 2.

use std::collections::{BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Error for invalid coupling-map edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingError {
    control: usize,
    target: usize,
    num_qubits: usize,
}

impl fmt::Display for CouplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge ({}, {}) is invalid for a device with {} physical qubits",
            self.control, self.target, self.num_qubits
        )
    }
}

impl Error for CouplingError {}

/// A coupling map `CM ⊆ P × P` over `m` physical qubits (Definition 2):
/// `(p_i, p_j) ∈ CM` means a CNOT with control `p_i` and target `p_j` can be
/// applied directly.
///
/// Physical qubits are indexed `0..m`; the paper's `p_1..p_m` are one-based.
///
/// ```
/// use qxmap_arch::CouplingMap;
///
/// let mut cm = CouplingMap::new(3).named("v-chain");
/// cm.add_edge(0, 1)?;
/// cm.add_edge(1, 2)?;
/// assert!(cm.has_edge(0, 1));
/// assert!(!cm.has_edge(1, 0));
/// assert!(cm.connected_either(1, 0));
/// assert_eq!(cm.distance(0, 2), Some(2));
/// # Ok::<(), qxmap_arch::CouplingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
    name: String,
}

impl CouplingMap {
    /// Creates an edgeless coupling map over `num_qubits` physical qubits.
    pub fn new(num_qubits: usize) -> CouplingMap {
        CouplingMap {
            num_qubits,
            edges: BTreeSet::new(),
            name: String::new(),
        }
    }

    /// Creates a coupling map from a directed edge list.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError`] if an edge is out of range or a self-loop.
    pub fn from_edges(
        num_qubits: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<CouplingMap, CouplingError> {
        let mut cm = CouplingMap::new(num_qubits);
        for (c, t) in edges {
            cm.add_edge(c, t)?;
        }
        Ok(cm)
    }

    /// Sets a device name (builder style).
    pub fn named(mut self, name: impl Into<String>) -> CouplingMap {
        self.name = name.into();
        self
    }

    /// The device name ("" when unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds the directed edge `(control, target)`.
    ///
    /// # Errors
    ///
    /// Returns [`CouplingError`] for out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, control: usize, target: usize) -> Result<(), CouplingError> {
        if control >= self.num_qubits || target >= self.num_qubits || control == target {
            return Err(CouplingError {
                control,
                target,
                num_qubits: self.num_qubits,
            });
        }
        self.edges.insert((control, target));
        Ok(())
    }

    /// Number of physical qubits `m`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether a CNOT with control `c` and target `t` is directly allowed.
    pub fn has_edge(&self, c: usize, t: usize) -> bool {
        self.edges.contains(&(c, t))
    }

    /// Whether `a` and `b` may interact in either orientation (possibly via
    /// the 4-H direction reversal).
    pub fn connected_either(&self, a: usize, b: usize) -> bool {
        self.has_edge(a, b) || self.has_edge(b, a)
    }

    /// Whether the edge `(c, t)` exists *only* in the reverse orientation,
    /// i.e. executing CNOT(c→t) requires the 4-H reversal.
    pub fn requires_reversal(&self, c: usize, t: usize) -> bool {
        !self.has_edge(c, t) && self.has_edge(t, c)
    }

    /// Iterator over directed edges `(control, target)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// The undirected edge set (`a < b`).
    pub fn undirected_edges(&self) -> Vec<(usize, usize)> {
        let mut set = BTreeSet::new();
        for &(c, t) in &self.edges {
            set.insert((c.min(t), c.max(t)));
        }
        set.into_iter().collect()
    }

    /// Undirected neighbors of `q`.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        let mut out = BTreeSet::new();
        for &(c, t) in &self.edges {
            if c == q {
                out.insert(t);
            }
            if t == q {
                out.insert(c);
            }
        }
        out.into_iter().collect()
    }

    /// Undirected degree of `q`.
    pub fn degree(&self, q: usize) -> usize {
        self.neighbors(q).len()
    }

    /// Undirected BFS distance between `a` and `b` (`None` if disconnected).
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.num_qubits];
        dist[a] = 0;
        let mut queue = VecDeque::from([a]);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    if v == b {
                        return Some(dist[v]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Full all-pairs undirected distance matrix; unreachable pairs are
    /// `usize::MAX`.
    pub fn distance_matrix(&self) -> Vec<Vec<usize>> {
        let m = self.num_qubits;
        let mut mat = vec![vec![usize::MAX; m]; m];
        for (s, row) in mat.iter_mut().enumerate() {
            row[s] = 0;
            let mut queue = VecDeque::from([s]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if row[v] == usize::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        mat
    }

    /// Whether the whole device graph is (undirectedly) connected.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        self.is_connected_subset(&(0..self.num_qubits).collect::<Vec<_>>())
    }

    /// Whether the induced subgraph on `subset` is connected. An isolated
    /// vertex in the subset (the paper's Section 4.1 `O(n)` check) makes
    /// this false.
    pub fn is_connected_subset(&self, subset: &[usize]) -> bool {
        if subset.is_empty() {
            return true;
        }
        let inset = |q: usize| subset.contains(&q);
        let mut seen = BTreeSet::from([subset[0]]);
        let mut queue = VecDeque::from([subset[0]]);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if inset(v) && seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen.len() == subset.len()
    }

    /// The induced sub-coupling-map on `subset` with *local* indices
    /// `0..subset.len()`; `subset[i]` is the physical qubit of local index
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics if `subset` contains duplicates or out-of-range qubits.
    pub fn subgraph(&self, subset: &[usize]) -> CouplingMap {
        let mut local = vec![usize::MAX; self.num_qubits];
        for (i, &p) in subset.iter().enumerate() {
            assert!(p < self.num_qubits, "subset qubit out of range");
            assert_eq!(local[p], usize::MAX, "duplicate subset qubit");
            local[p] = i;
        }
        let mut cm = CouplingMap::new(subset.len()).named(format!("{}[{subset:?}]", self.name));
        for &(c, t) in &self.edges {
            if local[c] != usize::MAX && local[t] != usize::MAX {
                cm.edges.insert((local[c], local[t]));
            }
        }
        cm
    }

    /// All 3-cliques of the undirected graph (the "triangles" of
    /// Section 4.2's qubit-triangle strategy), each sorted ascending.
    pub fn triangles(&self) -> Vec<[usize; 3]> {
        let mut out = Vec::new();
        let und = self.undirected_edges();
        let has = |a: usize, b: usize| und.binary_search(&(a.min(b), a.max(b))).is_ok();
        for a in 0..self.num_qubits {
            for b in (a + 1)..self.num_qubits {
                if !has(a, b) {
                    continue;
                }
                for c in (b + 1)..self.num_qubits {
                    if has(a, c) && has(b, c) {
                        out.push([a, b, c]);
                    }
                }
            }
        }
        out
    }

    /// Maximum undirected degree over all qubits.
    pub fn max_degree(&self) -> usize {
        (0..self.num_qubits)
            .map(|q| self.degree(q))
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for CouplingMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.name.is_empty() {
            write!(f, "{} ", self.name)?;
        }
        write!(f, "(m={}): {{", self.num_qubits)?;
        for (i, (c, t)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "p{}→p{}", c + 1, t + 1)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qx4() -> CouplingMap {
        crate::devices::ibm_qx4()
    }

    #[test]
    fn qx4_matches_paper_fig2() {
        // CM = {(p2,p1),(p3,p1),(p3,p2),(p4,p3),(p4,p5),(p5,p3)}, one-based.
        let cm = qx4();
        let expected = [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)];
        assert_eq!(cm.num_edges(), 6);
        for (c, t) in expected {
            assert!(cm.has_edge(c, t), "missing ({c},{t})");
            assert!(!cm.has_edge(t, c), "unexpected reverse ({t},{c})");
        }
    }

    #[test]
    fn add_edge_validates() {
        let mut cm = CouplingMap::new(2);
        assert!(cm.add_edge(0, 0).is_err());
        assert!(cm.add_edge(0, 5).is_err());
        assert!(cm.add_edge(0, 1).is_ok());
        let err = cm.add_edge(9, 9).unwrap_err();
        assert!(err.to_string().contains("(9, 9)"));
    }

    #[test]
    fn requires_reversal_logic() {
        let cm = qx4();
        assert!(cm.requires_reversal(0, 1)); // only (1,0) exists
        assert!(!cm.requires_reversal(1, 0));
        assert!(!cm.requires_reversal(0, 3)); // not connected at all
    }

    #[test]
    fn distances_on_qx4() {
        let cm = qx4();
        assert_eq!(cm.distance(0, 1), Some(1));
        assert_eq!(cm.distance(0, 3), Some(2)); // 0-2-3
        assert_eq!(cm.distance(1, 4), Some(2)); // 1-2-4
        assert_eq!(cm.distance(2, 2), Some(0));
        let mat = cm.distance_matrix();
        for (a, row) in mat.iter().enumerate() {
            for (b, &d) in row.iter().enumerate() {
                assert_eq!(d, cm.distance(a, b).unwrap());
                assert_eq!(d, mat[b][a]);
            }
        }
    }

    #[test]
    fn disconnected_distance_is_none() {
        let cm = CouplingMap::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(cm.distance(0, 3), None);
        assert!(!cm.is_connected());
        assert!(cm.is_connected_subset(&[0, 1]));
        assert!(!cm.is_connected_subset(&[0, 2]));
    }

    #[test]
    fn subset_connectivity_on_qx4() {
        let cm = qx4();
        // Example 9: every connected 4-subset must contain p3 (index 2).
        assert!(cm.is_connected_subset(&[0, 1, 2, 3]));
        assert!(!cm.is_connected_subset(&[0, 1, 3, 4]));
    }

    #[test]
    fn subgraph_uses_local_indices() {
        let cm = qx4();
        let sub = cm.subgraph(&[2, 3, 4]); // p3, p4, p5
        assert_eq!(sub.num_qubits(), 3);
        // (3,2) → local (1,0); (3,4) → (1,2); (4,2) → (2,0)
        assert!(sub.has_edge(1, 0));
        assert!(sub.has_edge(1, 2));
        assert!(sub.has_edge(2, 0));
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn subgraph_rejects_duplicates() {
        let _ = qx4().subgraph(&[0, 0]);
    }

    #[test]
    fn qx4_has_two_triangles() {
        // {p1,p2,p3} and {p3,p4,p5} (zero-based {0,1,2} and {2,3,4}).
        let tris = qx4().triangles();
        assert_eq!(tris, vec![[0, 1, 2], [2, 3, 4]]);
    }

    #[test]
    fn neighbors_are_undirected() {
        let cm = qx4();
        assert_eq!(cm.neighbors(2), vec![0, 1, 3, 4]);
        assert_eq!(cm.degree(2), 4);
        assert_eq!(cm.max_degree(), 4);
    }

    #[test]
    fn display_lists_edges_one_based() {
        let cm = CouplingMap::from_edges(2, [(1, 0)]).unwrap().named("tiny");
        assert_eq!(cm.to_string(), "tiny (m=2): {p2→p1}");
    }
}
