//! Calibration ingestion: measured per-edge error rates → integer cost
//! overrides for a [`DeviceModel`].
//!
//! Real backends publish *error rates* per two-qubit gate, not gate
//! counts. The exact objective and the heuristics, however, price
//! insertions in integer per-edge costs. The bridge is negative-log-
//! fidelity scaling: the probability that a routing sequence succeeds is
//! the product of its gates' fidelities, so maximizing success
//! probability is minimizing `Σ -ln(1 - e)` — an additive, non-negative
//! weight per edge, exactly what the cost tables hold.
//!
//! [`swap_costs_from_error_rates`] turns a calibration table into SWAP
//! cost overrides by scaling each pair's *default* cost with the ratio of
//! its negative-log-fidelity to the best (lowest-error) pair's: the most
//! reliable pair keeps the model's structural cost (7 on unidirectional
//! pairs, 3 on bidirectional ones — gate counts still matter), and every
//! other pair is priced proportionally dearer. Costs round to the
//! nearest integer and never drop below the structural cost, so a
//! calibrated model is always at least as expensive as the uncalibrated
//! one — calibration adds penalties, it never manufactures discounts.

use std::fmt;

use crate::model::DeviceModel;

/// Why a calibration table was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// An error rate referenced a pair of qubits that shares no coupling
    /// edge on the device.
    UnknownPair {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// An error rate was not a probability in `[0, 1)` (a rate of 1
    /// means the edge never succeeds — delete the edge instead of
    /// pricing it).
    BadRate {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// The offending rate.
        rate: f64,
    },
    /// The table listed the same coupled pair more than once (backend
    /// dumps often report per-direction rates; SWAP costs are
    /// undirected, and silently letting the last entry win would make
    /// the result depend on table order). Aggregate per-direction rates
    /// before ingestion.
    DuplicatePair {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrationError::UnknownPair { a, b } => {
                write!(f, "no coupling edge between p{a} and p{b}")
            }
            CalibrationError::BadRate { a, b, rate } => write!(
                f,
                "error rate {rate} for pair (p{a}, p{b}) is not a probability in [0, 1)"
            ),
            CalibrationError::DuplicatePair { a, b } => write!(
                f,
                "the pair {{p{a}, p{b}}} appears more than once in the calibration table \
                 (SWAP costs are undirected; aggregate per-direction rates first)"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Error rates below this floor are clamped up to it before taking the
/// negative log: a reported rate of exactly 0 (common in stale
/// calibration dumps) would otherwise make every other edge infinitely
/// dear relative to it.
const MIN_RATE: f64 = 1e-6;

/// Derives integer SWAP-cost overrides from per-pair two-qubit error
/// rates by negative-log-fidelity scaling (see the module docs for the
/// derivation). The result feeds [`DeviceModel::with_swap_costs`] — or
/// use the one-step [`with_swap_error_rates`].
///
/// Each pair's override is
/// `max(base, round(base · w / w_best))` where `base` is the model's
/// current SWAP cost for the pair, `w = -ln(1 - e)` its negative log
/// fidelity, and `w_best` the lowest `w` in the table. Pairs absent from
/// the table keep their current cost.
///
/// ```
/// use qxmap_arch::{calibration, devices, DeviceModel};
///
/// let model = DeviceModel::new(devices::ibm_qx4());
/// let overrides = calibration::swap_costs_from_error_rates(
///     &model,
///     [(0, 1, 0.01), (1, 2, 0.05)],
/// )
/// .unwrap();
/// // The most reliable pair keeps its structural cost of 7; the five
/// // times noisier pair is priced about five times dearer.
/// assert!(overrides.contains(&(0, 1, 7)));
/// assert!(overrides.iter().any(|&(a, b, c)| (a, b) == (1, 2) && c > 30));
/// ```
///
/// # Errors
///
/// Rejects rates outside `[0, 1)` and pairs without a coupling edge.
pub fn swap_costs_from_error_rates(
    model: &DeviceModel,
    rates: impl IntoIterator<Item = (usize, usize, f64)>,
) -> Result<Vec<(usize, usize, u32)>, CalibrationError> {
    let mut weighted: Vec<(usize, usize, u32, f64)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (a, b, rate) in rates {
        let base = model
            .swap_cost(a, b)
            .ok_or(CalibrationError::UnknownPair { a, b })?;
        if !(0.0..1.0).contains(&rate) || rate.is_nan() {
            return Err(CalibrationError::BadRate { a, b, rate });
        }
        if !seen.insert((a.min(b), a.max(b))) {
            return Err(CalibrationError::DuplicatePair { a, b });
        }
        let weight = -(1.0 - rate.max(MIN_RATE)).ln();
        weighted.push((a, b, base, weight));
    }
    let best = weighted
        .iter()
        .map(|&(_, _, _, w)| w)
        .fold(f64::INFINITY, f64::min);
    Ok(weighted
        .into_iter()
        .map(|(a, b, base, weight)| {
            let scaled = (f64::from(base) * weight / best).round();
            // Never cheaper than the structural cost, never overflowing.
            let cost = scaled.clamp(f64::from(base), f64::from(u32::MAX)) as u32;
            (a, b, cost)
        })
        .collect())
}

/// [`swap_costs_from_error_rates`] applied in one step: the calibrated
/// model, with the derived matrices refreshed once.
///
/// # Errors
///
/// Same conditions as [`swap_costs_from_error_rates`]; the model is
/// returned unchanged alongside no error only on success.
pub fn with_swap_error_rates(
    model: DeviceModel,
    rates: impl IntoIterator<Item = (usize, usize, f64)>,
) -> Result<DeviceModel, CalibrationError> {
    let overrides = swap_costs_from_error_rates(&model, rates)?;
    Ok(model.with_swap_costs(overrides))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coupling::CouplingMap;
    use crate::devices;

    /// The skewed two-path device: a diamond 0—1—3 / 0—2—3 where the
    /// upper path is measurably noisier than the lower one.
    fn diamond() -> DeviceModel {
        let cm = CouplingMap::from_edges(
            4,
            [
                (0, 1),
                (1, 0),
                (1, 3),
                (3, 1),
                (0, 2),
                (2, 0),
                (2, 3),
                (3, 2),
            ],
        )
        .unwrap();
        DeviceModel::new(cm)
    }

    #[test]
    fn skewed_two_path_device_prices_the_noisy_path_dearer() {
        let model = diamond();
        // Upper path (via p1): 5% error per pair; lower (via p2): 0.5%.
        let calibrated = with_swap_error_rates(
            model,
            [(0, 1, 0.05), (1, 3, 0.05), (0, 2, 0.005), (2, 3, 0.005)],
        )
        .unwrap();
        // The reliable path keeps the structural cost (bidirectional: 3);
        // the ~10x noisier path is ~10x dearer.
        assert_eq!(calibrated.swap_cost(0, 2), Some(3));
        assert_eq!(calibrated.swap_cost(2, 3), Some(3));
        let dear = calibrated.swap_cost(0, 1).unwrap();
        assert!((28..=34).contains(&dear), "{dear}");
        // Routing p0 → p3 takes the reliable path: cost 6, not 2·dear.
        assert_eq!(calibrated.swap_distance(0, 3), Some(6));
        // The skew is visible to the scheduler's statistics.
        assert!(calibrated.stats().cost_skew() > 5.0);
    }

    #[test]
    fn uniform_rates_keep_structural_costs() {
        let model = DeviceModel::new(devices::ibm_qx4());
        let rates: Vec<(usize, usize, f64)> = model
            .coupling_map()
            .undirected_edges()
            .into_iter()
            .map(|(a, b)| (a, b, 0.02))
            .collect();
        let calibrated = with_swap_error_rates(model.clone(), rates).unwrap();
        // Equal noise everywhere scales nothing: gate counts still rule.
        assert_eq!(calibrated.fingerprint(), model.fingerprint());
    }

    #[test]
    fn zero_rates_are_floored_not_infinite() {
        let model = diamond();
        let calibrated = with_swap_error_rates(
            model,
            [(0, 1, 0.0), (1, 3, 0.01), (0, 2, 0.01), (2, 3, 0.01)],
        )
        .unwrap();
        // The zero-rate pair is the best; the others are finite (≈ 4
        // orders of magnitude above the floor) rather than infinite.
        assert_eq!(calibrated.swap_cost(0, 1), Some(3));
        let other = calibrated.swap_cost(1, 3).unwrap();
        assert!(other < u32::MAX, "{other}");
        assert!(other > 3, "{other}");
    }

    #[test]
    fn bad_tables_are_rejected() {
        let model = diamond();
        assert_eq!(
            swap_costs_from_error_rates(&model, [(0, 3, 0.01)]),
            Err(CalibrationError::UnknownPair { a: 0, b: 3 })
        );
        assert_eq!(
            swap_costs_from_error_rates(&model, [(0, 1, 1.0)]),
            Err(CalibrationError::BadRate {
                a: 0,
                b: 1,
                rate: 1.0
            })
        );
        assert!(swap_costs_from_error_rates(&model, [(0, 1, -0.5)]).is_err());
        assert!(swap_costs_from_error_rates(&model, [(0, 1, f64::NAN)]).is_err());
        // Per-direction duplicates of one undirected pair are rejected
        // instead of silently letting the later rate win.
        assert_eq!(
            swap_costs_from_error_rates(&model, [(0, 1, 0.05), (1, 0, 0.005)]),
            Err(CalibrationError::DuplicatePair { a: 1, b: 0 })
        );
        // Errors surface before any model mutation: display is stable.
        let e = CalibrationError::UnknownPair { a: 0, b: 3 };
        assert!(e.to_string().contains("p0"));
    }

    #[test]
    fn calibration_steers_the_exact_objective() {
        // End-to-end sanity at the arch layer: the weighted distance
        // matrix (which the mappers read) reflects the ingestion.
        let model = diamond();
        let uncalibrated_dist = model.swap_distance(0, 3);
        let calibrated = with_swap_error_rates(
            model,
            [(0, 1, 0.2), (1, 3, 0.2), (0, 2, 0.001), (2, 3, 0.001)],
        )
        .unwrap();
        assert_eq!(uncalibrated_dist, calibrated.swap_distance(0, 3));
        assert!(
            calibrated.swap_distance(0, 1).unwrap() > calibrated.swap_distance(0, 2).unwrap(),
            "the noisy hop must be dearer than the quiet one"
        );
    }
}
