//! Emitting hardware-legal gate sequences (Fig. 3 of the paper).
//!
//! Two primitives are needed by every mapper:
//!
//! * executing a CNOT whose mapped direction opposes the coupling edge —
//!   repaired with **4 Hadamards** (cost 4);
//! * exchanging two adjacent physical qubits' states — a **SWAP**,
//!   decomposed into 3 CNOTs, one of which must be reversed on
//!   unidirectional edges, giving the paper's **7** elementary operations
//!   (3 CNOT + 4 H).

use std::error::Error;
use std::fmt;

use qxmap_circuit::Circuit;

use crate::coupling::CouplingMap;

/// The paper's cost metric (Section 2.2): "inserting a SWAP operation
/// increases the cost by 7 … switching the direction of a CNOT gate
/// increases the cost by 4".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// Elementary operations per inserted SWAP.
    pub swap: u32,
    /// Elementary operations per direction reversal (H count).
    pub reverse: u32,
}

impl CostModel {
    /// The paper's accounting: SWAP = 7, reversal = 4.
    pub fn paper() -> CostModel {
        CostModel {
            swap: 7,
            reverse: 4,
        }
    }

    /// Cost model for fully bidirectional devices (SWAP = 3 CNOTs, no
    /// reversal ever needed).
    pub fn bidirectional() -> CostModel {
        CostModel {
            swap: 3,
            reverse: 0,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::paper()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swap={}, reverse={}", self.swap, self.reverse)
    }
}

/// Error: a routing primitive was asked to act across non-adjacent qubits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError {
    a: usize,
    b: usize,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "physical qubits p{} and p{} share no coupling edge",
            self.a, self.b
        )
    }
}

impl Error for RouteError {}

/// Appends a CNOT with mapped control `pc` and target `pt` to `out`,
/// inserting the 4-H reversal when only the opposite edge exists. Returns
/// the number of elementary gates appended.
///
/// # Errors
///
/// Returns [`RouteError`] if `pc` and `pt` share no edge in either
/// direction.
///
/// ```
/// use qxmap_arch::{devices, route};
/// use qxmap_circuit::Circuit;
///
/// let cm = devices::ibm_qx4();
/// let mut out = Circuit::new(5);
/// // (1,0) ∈ CM: direct.
/// assert_eq!(route::emit_cnot(&mut out, &cm, 1, 0)?, 1);
/// // (0,1) ∉ CM but (1,0) ∈ CM: 4 H + 1 CNOT.
/// assert_eq!(route::emit_cnot(&mut out, &cm, 0, 1)?, 5);
/// # Ok::<(), qxmap_arch::route::RouteError>(())
/// ```
pub fn emit_cnot(
    out: &mut Circuit,
    cm: &CouplingMap,
    pc: usize,
    pt: usize,
) -> Result<u32, RouteError> {
    if cm.has_edge(pc, pt) {
        out.cx(pc, pt);
        Ok(1)
    } else if cm.has_edge(pt, pc) {
        // H ⊗ H · CNOT(pt→pc) · H ⊗ H realizes CNOT(pc→pt).
        out.h(pc);
        out.h(pt);
        out.cx(pt, pc);
        out.h(pc);
        out.h(pt);
        Ok(5)
    } else {
        Err(RouteError { a: pc, b: pt })
    }
}

/// Appends a SWAP of physical qubits `a` and `b` decomposed into coupling-
/// legal elementary gates (Fig. 3): `CX·CX·CX` on bidirectional edges
/// (3 gates), `CX·(H H CX H H)·CX` on unidirectional ones (7 gates).
/// Returns the number of elementary gates appended.
///
/// # Errors
///
/// Returns [`RouteError`] if `a` and `b` share no edge.
pub fn emit_swap(
    out: &mut Circuit,
    cm: &CouplingMap,
    a: usize,
    b: usize,
) -> Result<u32, RouteError> {
    // Orient so that (c, t) is a real edge.
    let (c, t) = if cm.has_edge(a, b) {
        (a, b)
    } else if cm.has_edge(b, a) {
        (b, a)
    } else {
        return Err(RouteError { a, b });
    };
    let mut cost = 0;
    out.cx(c, t);
    cost += 1;
    cost += emit_cnot(out, cm, t, c).expect("edge exists");
    out.cx(c, t);
    cost += 1;
    Ok(cost)
}

/// The cost [`emit_swap`] would report for the edge `{a, b}`, without
/// emitting anything.
///
/// # Errors
///
/// Returns [`RouteError`] if `a` and `b` share no edge.
pub fn swap_cost(cm: &CouplingMap, a: usize, b: usize) -> Result<u32, RouteError> {
    if cm.has_edge(a, b) && cm.has_edge(b, a) {
        Ok(3)
    } else if cm.connected_either(a, b) {
        Ok(7)
    } else {
        Err(RouteError { a, b })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use qxmap_circuit::Gate;

    #[test]
    fn direct_cnot_is_one_gate() {
        let cm = devices::ibm_qx4();
        let mut out = Circuit::new(5);
        assert_eq!(emit_cnot(&mut out, &cm, 2, 0).unwrap(), 1);
        assert_eq!(out.gates(), &[Gate::cnot(2, 0)]);
    }

    #[test]
    fn reversed_cnot_adds_four_h() {
        let cm = devices::ibm_qx4();
        let mut out = Circuit::new(5);
        assert_eq!(emit_cnot(&mut out, &cm, 0, 2).unwrap(), 5);
        assert_eq!(out.num_single_qubit_gates(), 4);
        assert_eq!(out.cnot_skeleton(), vec![(2, 0)]);
    }

    #[test]
    fn unconnected_cnot_errors() {
        let cm = devices::ibm_qx4();
        let mut out = Circuit::new(5);
        let err = emit_cnot(&mut out, &cm, 0, 3).unwrap_err();
        assert!(err.to_string().contains("p0"));
        assert!(out.gates().is_empty());
    }

    #[test]
    fn swap_on_unidirectional_edge_costs_seven() {
        let cm = devices::ibm_qx4();
        let mut out = Circuit::new(5);
        let cost = emit_swap(&mut out, &cm, 0, 1).unwrap();
        assert_eq!(cost, 7);
        assert_eq!(out.original_cost(), 7);
        assert_eq!(out.num_cnots(), 3);
        assert_eq!(out.num_single_qubit_gates(), 4);
        // Every CNOT must be coupling-legal.
        for (c, t) in out.cnot_skeleton() {
            assert!(cm.has_edge(c, t));
        }
        assert_eq!(swap_cost(&cm, 0, 1).unwrap(), 7);
    }

    #[test]
    fn swap_on_bidirectional_edge_costs_three() {
        let cm = devices::ibm_tokyo();
        let mut out = Circuit::new(20);
        let cost = emit_swap(&mut out, &cm, 0, 1).unwrap();
        assert_eq!(cost, 3);
        assert_eq!(out.num_cnots(), 3);
        assert_eq!(out.num_single_qubit_gates(), 0);
        assert_eq!(swap_cost(&cm, 0, 1).unwrap(), 3);
    }

    #[test]
    fn swap_cost_errors_off_edge() {
        let cm = devices::ibm_qx4();
        assert!(swap_cost(&cm, 0, 3).is_err());
        let mut out = Circuit::new(5);
        assert!(emit_swap(&mut out, &cm, 0, 3).is_err());
    }

    #[test]
    fn cost_model_defaults_to_paper() {
        assert_eq!(CostModel::default(), CostModel::paper());
        assert_eq!(CostModel::paper().swap, 7);
        assert_eq!(CostModel::paper().reverse, 4);
        assert_eq!(CostModel::bidirectional().swap, 3);
        assert_eq!(CostModel::paper().to_string(), "swap=7, reverse=4");
    }
}
