//! Logical-to-physical qubit layouts.

use std::error::Error;
use std::fmt;

use crate::perm::Permutation;

/// Error raised by invalid layout operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A qubit index was out of range.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// The requested physical qubit already hosts another logical qubit.
    Occupied {
        /// The physical qubit.
        phys: usize,
        /// The logical qubit already there.
        occupant: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::OutOfRange { index, bound } => {
                write!(f, "qubit index {index} out of range (bound {bound})")
            }
            LayoutError::Occupied { phys, occupant } => {
                write!(f, "physical qubit p{phys} already hosts q{occupant}")
            }
        }
    }
}

impl Error for LayoutError {}

/// A partial injective assignment of `n` logical qubits to `m ≥ n` physical
/// qubits — the object the `x^k_{ij}` variables of the paper describe at
/// one time step.
///
/// ```
/// use qxmap_arch::Layout;
///
/// let mut l = Layout::new(2, 5);
/// l.assign(0, 3)?;
/// l.assign(1, 2)?;
/// assert_eq!(l.phys_of(0), Some(3));
/// assert_eq!(l.logical_at(2), Some(1));
/// l.swap_phys(3, 2); // SWAP moves both logical qubits
/// assert_eq!(l.phys_of(0), Some(2));
/// # Ok::<(), qxmap_arch::LayoutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    log2phys: Vec<Option<usize>>,
    phys2log: Vec<Option<usize>>,
}

impl Layout {
    /// An empty layout for `num_logical` logical and `num_phys` physical
    /// qubits.
    pub fn new(num_logical: usize, num_phys: usize) -> Layout {
        Layout {
            log2phys: vec![None; num_logical],
            phys2log: vec![None; num_phys],
        }
    }

    /// The identity layout `q_j → p_j`.
    ///
    /// # Panics
    ///
    /// Panics if `num_logical > num_phys`.
    pub fn identity(num_logical: usize, num_phys: usize) -> Layout {
        assert!(num_logical <= num_phys);
        let mut l = Layout::new(num_logical, num_phys);
        for q in 0..num_logical {
            l.assign(q, q).expect("identity assignment is injective");
        }
        l
    }

    /// Builds a layout from a logical→physical vector.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if an index is out of range or two logical
    /// qubits share a physical qubit.
    pub fn from_log2phys(
        log2phys: Vec<Option<usize>>,
        num_phys: usize,
    ) -> Result<Layout, LayoutError> {
        let mut l = Layout::new(log2phys.len(), num_phys);
        for (q, p) in log2phys.iter().enumerate() {
            if let Some(p) = p {
                l.assign(q, *p)?;
            }
        }
        Ok(l)
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.log2phys.len()
    }

    /// Number of physical qubits.
    pub fn num_phys(&self) -> usize {
        self.phys2log.len()
    }

    /// Assigns logical `q` to physical `p`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] if either index is out of range, `q` is
    /// already placed, or `p` is occupied.
    pub fn assign(&mut self, q: usize, p: usize) -> Result<(), LayoutError> {
        if q >= self.log2phys.len() {
            return Err(LayoutError::OutOfRange {
                index: q,
                bound: self.log2phys.len(),
            });
        }
        if p >= self.phys2log.len() {
            return Err(LayoutError::OutOfRange {
                index: p,
                bound: self.phys2log.len(),
            });
        }
        if let Some(occupant) = self.phys2log[p] {
            return Err(LayoutError::Occupied { phys: p, occupant });
        }
        if let Some(old) = self.log2phys[q] {
            self.phys2log[old] = None;
        }
        self.log2phys[q] = Some(p);
        self.phys2log[p] = Some(q);
        Ok(())
    }

    /// Physical position of logical `q` (`None` if unplaced).
    pub fn phys_of(&self, q: usize) -> Option<usize> {
        self.log2phys.get(q).copied().flatten()
    }

    /// Logical occupant of physical `p` (`None` if free).
    pub fn logical_at(&self, p: usize) -> Option<usize> {
        self.phys2log.get(p).copied().flatten()
    }

    /// Whether every logical qubit is placed.
    pub fn is_complete(&self) -> bool {
        self.log2phys.iter().all(|p| p.is_some())
    }

    /// Exchanges whatever occupies physical qubits `a` and `b` — the effect
    /// of a SWAP gate on the layout.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn swap_phys(&mut self, a: usize, b: usize) {
        let la = self.phys2log[a];
        let lb = self.phys2log[b];
        self.phys2log[a] = lb;
        self.phys2log[b] = la;
        if let Some(q) = la {
            self.log2phys[q] = Some(b);
        }
        if let Some(q) = lb {
            self.log2phys[q] = Some(a);
        }
    }

    /// Applies a permutation of physical-qubit states: the occupant of
    /// physical `i` moves to physical `π(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != num_phys`.
    pub fn apply_permutation(&mut self, pi: &Permutation) {
        assert_eq!(pi.len(), self.num_phys());
        let new_phys2log = {
            let mut v = vec![None; self.num_phys()];
            for (i, &occ) in self.phys2log.iter().enumerate() {
                if let Some(q) = occ {
                    v[pi.apply(i)] = Some(q);
                }
            }
            v
        };
        self.phys2log = new_phys2log;
        for (p, occ) in self.phys2log.iter().enumerate() {
            if let Some(q) = *occ {
                self.log2phys[q] = Some(p);
            }
        }
    }

    /// The logical→physical image as a vector.
    pub fn as_log2phys(&self) -> &[Option<usize>] {
        &self.log2phys
    }

    /// The permutation of physical qubits transforming `self` into `other`
    /// (both must be complete and place the same logical qubits), with
    /// unoccupied physical qubits mapped arbitrarily but consistently.
    ///
    /// Returns `None` if the layouts place different logical qubit sets.
    pub fn permutation_to(&self, other: &Layout) -> Option<Permutation> {
        if self.num_phys() != other.num_phys() || self.num_logical() != other.num_logical() {
            return None;
        }
        let m = self.num_phys();
        let mut image = vec![usize::MAX; m];
        let mut used = vec![false; m];
        for q in 0..self.num_logical() {
            match (self.phys_of(q), other.phys_of(q)) {
                (Some(a), Some(b)) => {
                    image[a] = b;
                    used[b] = true;
                }
                (None, None) => {}
                _ => return None,
            }
        }
        // Fill unconstrained positions with remaining targets in order.
        let mut free: Vec<usize> = (0..m).filter(|&p| !used[p]).collect();
        for slot in image.iter_mut() {
            if *slot == usize::MAX {
                *slot = free.remove(0);
            }
        }
        Some(Permutation::from_image(image))
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (q, p) in self.log2phys.iter().enumerate() {
            if let Some(p) = p {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "q{q}→p{p}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_enforces_injectivity() {
        let mut l = Layout::new(2, 3);
        l.assign(0, 1).unwrap();
        let err = l.assign(1, 1).unwrap_err();
        assert_eq!(
            err,
            LayoutError::Occupied {
                phys: 1,
                occupant: 0
            }
        );
        assert!(l.assign(1, 2).is_ok());
        assert!(l.is_complete());
    }

    #[test]
    fn reassign_frees_old_slot() {
        let mut l = Layout::new(1, 3);
        l.assign(0, 0).unwrap();
        l.assign(0, 2).unwrap();
        assert_eq!(l.logical_at(0), None);
        assert_eq!(l.phys_of(0), Some(2));
    }

    #[test]
    fn out_of_range_errors() {
        let mut l = Layout::new(1, 1);
        assert!(matches!(
            l.assign(5, 0),
            Err(LayoutError::OutOfRange { index: 5, .. })
        ));
        assert!(matches!(
            l.assign(0, 5),
            Err(LayoutError::OutOfRange { index: 5, .. })
        ));
    }

    #[test]
    fn swap_phys_moves_occupants() {
        let mut l = Layout::identity(2, 3);
        l.swap_phys(0, 2);
        assert_eq!(l.phys_of(0), Some(2));
        assert_eq!(l.phys_of(1), Some(1));
        assert_eq!(l.logical_at(0), None);
    }

    #[test]
    fn apply_permutation_matches_swap_chain() {
        let mut a = Layout::identity(3, 3);
        let mut b = a.clone();
        // τ12 ∘ τ01 (swap(0,1) then swap(1,2)) sends p0's occupant to p2:
        // image = [2, 0, 1].
        a.swap_phys(0, 1);
        a.swap_phys(1, 2);
        b.apply_permutation(&Permutation::from_image(vec![2, 0, 1]));
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_to_recovers_difference() {
        let mut from = Layout::identity(3, 5);
        let mut to = Layout::identity(3, 5);
        to.swap_phys(0, 3);
        to.swap_phys(1, 4);
        let pi = from.permutation_to(&to).unwrap();
        from.apply_permutation(&pi);
        for q in 0..3 {
            assert_eq!(from.phys_of(q), to.phys_of(q));
        }
    }

    #[test]
    fn permutation_to_rejects_mismatched_placement() {
        let a = Layout::identity(2, 3);
        let b = Layout::new(2, 3);
        assert!(a.permutation_to(&b).is_none());
    }

    #[test]
    fn display_shows_assignments() {
        let l = Layout::identity(2, 4);
        assert_eq!(l.to_string(), "{q0→p0, q1→p1}");
    }
}
