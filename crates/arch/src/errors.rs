//! Error-message building blocks shared across the workspace's mapper
//! error types.
//!
//! Every mapping engine — exact, heuristic, and the `qxmap-map` facade —
//! can fail because a circuit needs more logical qubits than a device has
//! physical ones. The canonical rendering of that condition lives here,
//! once, so `qxmap_core::MapError`, `qxmap_heuristic::HeuristicError` and
//! `qxmap_map::MapperError` all display it identically.

use std::fmt;

/// Writes the canonical "circuit larger than device" message.
pub fn fmt_too_many_qubits(
    f: &mut fmt::Formatter<'_>,
    logical: usize,
    physical: usize,
) -> fmt::Result {
    write!(
        f,
        "circuit uses {logical} logical qubits but the device has only {physical}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Render(usize, usize);
    impl fmt::Display for Render {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            fmt_too_many_qubits(f, self.0, self.1)
        }
    }

    #[test]
    fn message_mentions_both_counts() {
        let s = Render(6, 5).to_string();
        assert!(s.contains("6 logical"));
        assert!(s.contains("only 5"));
    }
}
