//! Concrete device coupling maps.
//!
//! The IBM QX maps follow the published backend specifications of the
//! 2017–2018 cloud devices; the paper's evaluation targets [`ibm_qx4`]
//! (IBM Q 5 "Tenerife", Fig. 2). Synthetic generators are provided for
//! scaling studies.

use crate::coupling::CouplingMap;

/// IBM QX2 (IBM Q 5 "Yorktown/Sparrow"): 5 qubits.
///
/// `CM = {(0,1),(0,2),(1,2),(3,2),(3,4),(4,2)}` (zero-based).
pub fn ibm_qx2() -> CouplingMap {
    CouplingMap::from_edges(5, [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 2)])
        .expect("static edge list is valid")
        .named("IBM QX2")
}

/// IBM QX4 (IBM Q 5 "Tenerife") — the evaluation architecture of the paper
/// (Fig. 2).
///
/// One-based, as printed: `CM = {(p2,p1),(p3,p1),(p3,p2),(p4,p3),(p4,p5),
/// (p5,p3)}`; zero-based here.
///
/// ```
/// let cm = qxmap_arch::devices::ibm_qx4();
/// assert_eq!(cm.num_qubits(), 5);
/// assert_eq!(cm.num_edges(), 6);
/// assert!(cm.has_edge(4, 2)); // p5 → p3
/// ```
pub fn ibm_qx4() -> CouplingMap {
    CouplingMap::from_edges(5, [(1, 0), (2, 0), (2, 1), (3, 2), (3, 4), (4, 2)])
        .expect("static edge list is valid")
        .named("IBM QX4")
}

/// IBM QX5 (IBM Q 16 "Rueschlikon"): 16 qubits in a 2×8 ladder.
pub fn ibm_qx5() -> CouplingMap {
    CouplingMap::from_edges(
        16,
        [
            (1, 0),
            (1, 2),
            (2, 3),
            (3, 4),
            (3, 14),
            (5, 4),
            (6, 5),
            (6, 7),
            (6, 11),
            (7, 10),
            (8, 7),
            (9, 8),
            (9, 10),
            (11, 10),
            (12, 5),
            (12, 11),
            (12, 13),
            (13, 4),
            (13, 14),
            (15, 0),
            (15, 2),
            (15, 14),
        ],
    )
    .expect("static edge list is valid")
    .named("IBM QX5")
}

/// IBM Q 20 "Tokyo": 20 qubits, *bidirectional* couplings (every edge in
/// both orientations), 4×5 grid with diagonals.
///
/// Bidirectional edges exercise the refined `z^k` encoding (see DESIGN.md):
/// no H-reversal cost is ever needed on this device.
pub fn ibm_tokyo() -> CouplingMap {
    let undirected: &[(usize, usize)] = &[
        // horizontal rows
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 4),
        (5, 6),
        (6, 7),
        (7, 8),
        (8, 9),
        (10, 11),
        (11, 12),
        (12, 13),
        (13, 14),
        (15, 16),
        (16, 17),
        (17, 18),
        (18, 19),
        // vertical columns
        (0, 5),
        (1, 6),
        (2, 7),
        (3, 8),
        (4, 9),
        (5, 10),
        (6, 11),
        (7, 12),
        (8, 13),
        (9, 14),
        (10, 15),
        (11, 16),
        (12, 17),
        (13, 18),
        (14, 19),
        // diagonals
        (1, 7),
        (2, 6),
        (3, 9),
        (4, 8),
        (5, 11),
        (6, 10),
        (7, 13),
        (8, 12),
        (11, 17),
        (12, 16),
        (13, 19),
        (14, 18),
    ];
    let mut edges = Vec::with_capacity(undirected.len() * 2);
    for &(a, b) in undirected {
        edges.push((a, b));
        edges.push((b, a));
    }
    CouplingMap::from_edges(20, edges)
        .expect("static edge list is valid")
        .named("IBM Q20 Tokyo")
}

/// A directed line `0 → 1 → … → n-1`.
pub fn linear(n: usize) -> CouplingMap {
    CouplingMap::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
        .expect("static edge list is valid")
        .named(format!("linear-{n}"))
}

/// A directed ring `0 → 1 → … → n-1 → 0`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> CouplingMap {
    assert!(n >= 3, "a ring needs at least 3 qubits");
    CouplingMap::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
        .expect("static edge list is valid")
        .named(format!("ring-{n}"))
}

/// An `rows × cols` grid with bidirectional nearest-neighbor couplings.
pub fn grid(rows: usize, cols: usize) -> CouplingMap {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let q = r * cols + c;
            if c + 1 < cols {
                edges.push((q, q + 1));
                edges.push((q + 1, q));
            }
            if r + 1 < rows {
                edges.push((q, q + cols));
                edges.push((q + cols, q));
            }
        }
    }
    CouplingMap::from_edges(n, edges)
        .expect("static edge list is valid")
        .named(format!("grid-{rows}x{cols}"))
}

/// A star: qubit 0 targets every other qubit.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> CouplingMap {
    assert!(n >= 2, "a star needs at least 2 qubits");
    CouplingMap::from_edges(n, (1..n).map(|i| (0, i)))
        .expect("static edge list is valid")
        .named(format!("star-{n}"))
}

/// An IBM-style **heavy-hex** lattice over a `rows × cols` brick-wall
/// grid: hexagonal connectivity (all horizontal neighbors, vertical rungs
/// at alternating columns) with every edge subdivided by a flag qubit, so
/// no qubit exceeds degree 3 — the topology of IBM's Falcon/Eagle
/// generation. All couplings are bidirectional, like those backends.
///
/// Qubits `0 .. rows·cols` are the grid vertices (`r·cols + c`); the
/// remaining qubits are the edge-subdividing flags, appended in a
/// deterministic order.
///
/// ```
/// let hh = qxmap_arch::devices::heavy_hex(2, 2);
/// assert_eq!(hh.num_qubits(), 7); // 4 grid vertices + 3 flags
/// assert!(hh.is_connected());
/// assert!(hh.max_degree() <= 3);
/// ```
///
/// # Panics
///
/// Panics if `rows < 2` or `cols < 2`.
pub fn heavy_hex(rows: usize, cols: usize) -> CouplingMap {
    assert!(
        rows >= 2 && cols >= 2,
        "a heavy-hex lattice needs a 2x2 grid"
    );
    let mut base: Vec<(usize, usize)> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let q = r * cols + c;
            if c + 1 < cols {
                base.push((q, q + 1));
            }
            // Vertical rungs at alternating columns form the hexagons.
            if r + 1 < rows && (r + c) % 2 == 0 {
                base.push((q, q + cols));
            }
        }
    }
    let n = rows * cols + base.len();
    let mut edges = Vec::with_capacity(base.len() * 4);
    for (i, &(u, v)) in base.iter().enumerate() {
        let flag = rows * cols + i;
        for (a, b) in [(u, flag), (flag, v)] {
            edges.push((a, b));
            edges.push((b, a));
        }
    }
    CouplingMap::from_edges(n, edges)
        .expect("static construction is valid")
        .named(format!("heavy-hex-{rows}x{cols}"))
}

/// The complete directed graph on `n` qubits (no mapping overhead ever
/// needed — useful as a control in experiments).
pub fn fully_connected(n: usize) -> CouplingMap {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b {
                edges.push((a, b));
            }
        }
    }
    CouplingMap::from_edges(n, edges)
        .expect("static edge list is valid")
        .named(format!("K{n}"))
}

/// Looks a device up by (case-insensitive) name.
///
/// Fixed backends: `qx2`, `qx4`, `qx5`, `tokyo`. Generated families are
/// parsed from suffixed names, so the whole topology library is reachable
/// from CLI flags and config files:
///
/// * `linear-N`, `ring-N`, `star-N`, `k-N` (complete graph);
/// * `grid-RxC`;
/// * `heavy-hex-N` (a lattice over an `(N+1) × (N+1)`-**vertex** grid,
///   i.e. `N × N` bricks) or `heavy-hex-RxC` (an `R × C`-vertex grid).
///
/// ```
/// use qxmap_arch::devices::by_name;
/// assert_eq!(by_name("ring-6").unwrap().num_qubits(), 6);
/// assert_eq!(by_name("grid-2x3").unwrap().num_qubits(), 6);
/// assert_eq!(by_name("heavy-hex-1").unwrap().num_qubits(), 7);
/// assert!(by_name("nope").is_none());
/// ```
pub fn by_name(name: &str) -> Option<CouplingMap> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "qx2" | "ibmqx2" | "yorktown" => return Some(ibm_qx2()),
        "qx4" | "ibmqx4" | "tenerife" => return Some(ibm_qx4()),
        "qx5" | "ibmqx5" | "rueschlikon" => return Some(ibm_qx5()),
        "tokyo" | "q20" => return Some(ibm_tokyo()),
        _ => {}
    }
    let dims = |spec: &str| -> Option<(usize, usize)> {
        let (r, c) = spec.split_once('x')?;
        Some((r.parse().ok()?, c.parse().ok()?))
    };
    if let Some(spec) = lower.strip_prefix("heavy-hex-") {
        if let Some((r, c)) = dims(spec) {
            return (r >= 2 && c >= 2).then(|| heavy_hex(r, c));
        }
        let n: usize = spec.parse().ok()?;
        return (n >= 1).then(|| heavy_hex(n + 1, n + 1));
    }
    if let Some(spec) = lower.strip_prefix("grid-") {
        let (r, c) = dims(spec)?;
        return (r * c > 0).then(|| grid(r, c));
    }
    for (prefix, min, build) in [
        ("linear-", 1usize, linear as fn(usize) -> CouplingMap),
        ("ring-", 3, ring),
        ("star-", 2, star),
        ("k-", 1, fully_connected),
    ] {
        if let Some(spec) = lower.strip_prefix(prefix) {
            let n: usize = spec.parse().ok()?;
            return (n >= min).then(|| build(n));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ibm_devices_are_connected() {
        for cm in [ibm_qx2(), ibm_qx4(), ibm_qx5(), ibm_tokyo()] {
            assert!(cm.is_connected(), "{} disconnected", cm.name());
        }
    }

    #[test]
    fn device_sizes() {
        assert_eq!(ibm_qx2().num_qubits(), 5);
        assert_eq!(ibm_qx4().num_qubits(), 5);
        assert_eq!(ibm_qx5().num_qubits(), 16);
        assert_eq!(ibm_tokyo().num_qubits(), 20);
    }

    #[test]
    fn qx5_is_degree_three_ladder() {
        let cm = ibm_qx5();
        assert_eq!(cm.num_edges(), 22);
        assert!(cm.max_degree() <= 3);
    }

    #[test]
    fn tokyo_is_bidirectional() {
        let cm = ibm_tokyo();
        for (c, t) in cm.edges().collect::<Vec<_>>() {
            assert!(cm.has_edge(t, c), "({t},{c}) missing");
            assert!(!cm.requires_reversal(c, t));
        }
    }

    #[test]
    fn linear_and_ring() {
        let l = linear(4);
        assert!(l.has_edge(0, 1) && l.has_edge(2, 3));
        assert_eq!(l.num_edges(), 3);
        let r = ring(4);
        assert!(r.has_edge(3, 0));
        assert_eq!(r.num_edges(), 4);
    }

    #[test]
    fn grid_edges() {
        let g = grid(2, 3);
        assert_eq!(g.num_qubits(), 6);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(0, 3) && g.has_edge(3, 0));
        assert!(!g.connected_either(0, 4));
        assert!(g.is_connected());
    }

    #[test]
    fn star_and_complete() {
        let s = star(5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(1), 1);
        let k = fully_connected(4);
        assert_eq!(k.num_edges(), 12);
        assert!(k.has_edge(3, 1) && k.has_edge(1, 3));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("QX4").unwrap().name(), "IBM QX4");
        assert_eq!(by_name("tenerife").unwrap().name(), "IBM QX4");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn lookup_parses_generated_families() {
        assert_eq!(by_name("linear-4").unwrap(), linear(4));
        assert_eq!(by_name("ring-5").unwrap(), ring(5));
        assert_eq!(by_name("star-3").unwrap(), star(3));
        assert_eq!(by_name("k-4").unwrap(), fully_connected(4));
        assert_eq!(by_name("grid-3x2").unwrap(), grid(3, 2));
        assert_eq!(by_name("heavy-hex-2x3").unwrap(), heavy_hex(2, 3));
        assert_eq!(by_name("heavy-hex-2").unwrap(), heavy_hex(3, 3));
        // Out-of-range parameters are rejected, not panicked on.
        assert!(by_name("ring-2").is_none());
        assert!(by_name("heavy-hex-0").is_none());
        assert!(by_name("grid-0x4").is_none());
        assert!(by_name("grid-x").is_none());
    }

    #[test]
    fn heavy_hex_is_degree_three_and_bidirectional() {
        for (r, c) in [(2, 2), (2, 3), (3, 3), (4, 5)] {
            let hh = heavy_hex(r, c);
            assert!(hh.is_connected(), "{r}x{c} disconnected");
            assert!(hh.max_degree() <= 3, "{r}x{c} exceeds degree 3");
            for (a, b) in hh.edges().collect::<Vec<_>>() {
                assert!(hh.has_edge(b, a), "({a},{b}) not bidirectional");
            }
            // Flags subdivide edges: every flag qubit has degree exactly 2.
            for q in r * c..hh.num_qubits() {
                assert_eq!(hh.degree(q), 2, "flag {q} in {r}x{c}");
            }
        }
        assert_eq!(heavy_hex(2, 2).num_qubits(), 7);
    }

    #[test]
    fn qx2_differs_from_qx4() {
        assert_ne!(ibm_qx2(), ibm_qx4());
        assert!(ibm_qx2().has_edge(0, 1));
        assert!(ibm_qx4().has_edge(1, 0));
    }
}
