//! # qxmap-arch
//!
//! Device models for IBM QX architectures and the routing substrate shared
//! by the exact and heuristic mappers of the `qxmap` workspace:
//!
//! * [`CouplingMap`] — the directed CNOT-constraint graph of Definition 2.
//! * [`DeviceModel`] — **the authoritative device/cost layer**: a coupling
//!   map plus per-edge directed costs (CNOT / SWAP / 4-H reversal,
//!   defaulting to the paper's 7-and-4 model, calibration overrides
//!   accepted), precomputed hop and cost-weighted distance matrices,
//!   scheduler statistics, and a stable content fingerprint used as the
//!   device identity in cache keys. Exact and heuristic engines read every
//!   cost from here instead of re-deriving their own.
//! * [`devices`] — IBM QX2 / QX4 / QX5 / Tokyo plus a topology library of
//!   synthetic generators (linear, ring, grid, star, heavy-hex, complete),
//!   all reachable by name via [`devices::by_name`].
//! * [`Permutation`] — elements of the symmetric group on physical qubits.
//! * [`SwapTable`] — minimal `swaps(π)` counts *and* witness SWAP sequences
//!   for every permutation realizable on a coupling (sub)graph, computed by
//!   breadth-first search exactly as the paper prescribes ("determined …
//!   by using an exhaustive search"). [`SwapTable::shared`] memoizes
//!   tables in a process-wide cache keyed by the induced subgraph, so
//!   per-subset exact solves and request batches build each table once.
//! * [`connected_subsets`] — the Section 4.1 physical-qubit subset
//!   enumeration with the isolation filter.
//! * [`Layout`] — a (partial) assignment of logical to physical qubits.
//! * [`route`] — emitting hardware-legal SWAP decompositions and
//!   direction-reversed CNOTs (Fig. 3), with the paper's 7/4 cost model.
//!
//! ```
//! use qxmap_arch::{devices, SwapTable};
//!
//! let qx4 = devices::ibm_qx4();
//! assert_eq!(qx4.num_qubits(), 5);
//! // p3 (index 2) is the hub: it may target p1 and p2 and is targeted by p4, p5.
//! assert!(qx4.has_edge(2, 0));
//! let table = SwapTable::new(&qx4);
//! // 120 permutations of 5 qubits are all realizable on a connected graph.
//! assert_eq!(table.len(), 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
mod coupling;
pub mod devices;
pub mod errors;
mod layout;
mod model;
mod perm;
pub mod route;
mod subsets;
mod swaps;

pub use coupling::{CouplingError, CouplingMap};
pub use layout::{Layout, LayoutError};
pub use model::{DeviceModel, DeviceStats};
pub use perm::Permutation;
pub use route::CostModel;
pub use subsets::connected_subsets;
pub use swaps::{CostedSwapTable, SwapTable, SwapTableCacheStats};
