//! The first-class device model: one authoritative home for everything the
//! mappers previously re-derived about a device.
//!
//! A [`DeviceModel`] bundles a [`CouplingMap`] with **per-edge directed
//! costs** — the elementary-gate price of a CNOT on each coupling edge, of
//! a SWAP on each coupled pair, and of the 4-Hadamard direction reversal —
//! defaulting to the paper's uniform 7-and-4 accounting but accepting
//! per-edge calibration overrides (e.g. fidelity- or duration-derived
//! weights from a backend's calibration data). On top of the costs it
//! precomputes, exactly once:
//!
//! * the all-pairs **hop matrix** (the BFS distances every heuristic used
//!   to recompute per `map` call),
//! * the all-pairs **cost-weighted distance matrix** (cheapest SWAP-chain
//!   cost between any two physical qubits, by Dijkstra),
//! * cheap **statistics** (diameter, directedness, all-to-all-ness, cost
//!   skew) that schedulers use to skip dominated work,
//! * a stable content **fingerprint** that cache keys use as the device's
//!   identity — two models answer mapping requests identically if and only
//!   if their fingerprints agree (up to hash collision).
//!
//! Every layer reads from here: the exact engine's SAT objective takes its
//! permutation and reversal weights from the model, the heuristics share
//! its hop matrix and score insertions with its edge costs, and the solve
//! cache keys entries by its fingerprint.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::coupling::CouplingMap;
use crate::route::CostModel;
use crate::swaps::CostedSwapTable;

/// Cheap summary statistics of a [`DeviceModel`], precomputed once — the
/// signals a portfolio scheduler reads to decide which engines are worth
/// racing on this device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceStats {
    /// Physical qubits `m`.
    pub num_qubits: usize,
    /// Directed coupling edges.
    pub num_edges: usize,
    /// Coupled (undirected) pairs.
    pub num_pairs: usize,
    /// Largest finite hop distance between any two qubits (0 on devices
    /// with fewer than two qubits).
    pub diameter: usize,
    /// Whether the device graph is (undirectedly) connected.
    pub connected: bool,
    /// Whether every pair of distinct qubits is coupled (diameter ≤ 1):
    /// routing never needs a SWAP on such a device.
    pub all_to_all: bool,
    /// Whether any edge exists in only one orientation (so direction
    /// reversals can be charged at all).
    pub has_unidirectional: bool,
    /// Cheapest per-pair SWAP cost (0 on edgeless devices).
    pub min_swap_cost: u32,
    /// Dearest per-pair SWAP cost (0 on edgeless devices).
    pub max_swap_cost: u32,
    /// Dearest per-edge CNOT cost (0 on edgeless devices; the
    /// uncalibrated baseline is 1).
    pub max_cnot_cost: u32,
}

impl DeviceStats {
    /// How unevenly calibrated the SWAP costs are: `max / min` (1.0 for
    /// uniform models, and on edgeless devices by convention).
    pub fn cost_skew(&self) -> f64 {
        if self.min_swap_cost == 0 {
            1.0
        } else {
            f64::from(self.max_swap_cost) / f64::from(self.min_swap_cost)
        }
    }

    /// Whether any CNOT edge is calibrated above the baseline cost of 1 —
    /// i.e. whether [`DeviceModel::execution_overhead`] can be nonzero on
    /// a correctly oriented edge, making layout choice matter even where
    /// no SWAP or reversal is ever needed. Schedulers must not treat a
    /// zero-insertion result as free while this holds.
    pub fn has_cnot_surcharge(&self) -> bool {
        self.max_cnot_cost > 1
    }
}

/// A coupling map plus calibration-aware per-edge costs, precomputed
/// distance matrices, statistics, and a stable content fingerprint — the
/// workspace's one authoritative device/cost layer (see the module-level
/// documentation above for the role it plays in the stack).
///
/// ```
/// use qxmap_arch::{devices, DeviceModel};
///
/// let model = DeviceModel::new(devices::ibm_qx4());
/// // QX4's edges are all unidirectional: the paper's 7/4 accounting.
/// assert_eq!(model.swap_cost(0, 1), Some(7));
/// assert_eq!(model.reversal_cost(0, 1), Some(4)); // only (1,0) exists
/// assert_eq!(model.hop(0, 3), Some(2));
/// assert_eq!(model.swap_distance(0, 3), Some(14)); // two SWAPs away
/// assert!(model.stats().has_unidirectional);
///
/// // Calibration overrides change costs — and the fingerprint.
/// let skewed = model.clone().with_swap_cost(0, 1, 21);
/// assert_eq!(skewed.swap_cost(0, 1), Some(21));
/// assert_ne!(model.fingerprint(), skewed.fingerprint());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    cm: CouplingMap,
    /// Elementary gates per CNOT, per directed coupling edge.
    cnot: BTreeMap<(usize, usize), u32>,
    /// Elementary gates per SWAP, per coupled pair (key `a < b`).
    swap: BTreeMap<(usize, usize), u32>,
    /// Reversal surcharge for executing `CNOT(c, t)` when only the edge
    /// `(t, c)` exists — keyed by the *missing* direction `(c, t)`.
    reverse: BTreeMap<(usize, usize), u32>,
    /// All-pairs BFS hop distances (`usize::MAX` for unreachable pairs).
    hops: Vec<Vec<usize>>,
    /// All-pairs cheapest SWAP-chain costs (`u64::MAX` for unreachable
    /// pairs), Dijkstra over the per-pair SWAP costs.
    swap_dist: Vec<Vec<u64>>,
    stats: DeviceStats,
    fingerprint: u64,
}

impl DeviceModel {
    /// The hardware-derived default model: CNOTs cost 1, SWAPs cost what
    /// [`crate::route::emit_swap`] actually emits (3 elementary gates on
    /// bidirectional pairs, 7 on unidirectional ones), reversals cost the
    /// 4 Hadamards of Fig. 3. On fully unidirectional devices like the
    /// IBM QX maps this *is* the paper's 7-and-4 model.
    pub fn new(cm: CouplingMap) -> DeviceModel {
        let mut cnot = BTreeMap::new();
        let mut swap = BTreeMap::new();
        let mut reverse = BTreeMap::new();
        for (c, t) in cm.edges() {
            cnot.insert((c, t), 1);
            if !cm.has_edge(t, c) {
                reverse.insert((t, c), 4);
            }
        }
        for (a, b) in cm.undirected_edges() {
            let bidirectional = cm.has_edge(a, b) && cm.has_edge(b, a);
            swap.insert((a, b), if bidirectional { 3 } else { 7 });
        }
        DeviceModel::assemble(cm, cnot, swap, reverse)
    }

    /// A uniform model: every SWAP costs `cost_model.swap`, every reversal
    /// `cost_model.reverse`, every CNOT 1 — regardless of edge
    /// orientation. This reproduces the seed objective the exact engine
    /// historically charged for any [`CostModel`].
    pub fn uniform(cm: CouplingMap, cost_model: CostModel) -> DeviceModel {
        let (cnot, swap, reverse) = DeviceModel::uniform_tables(&cm, cost_model);
        DeviceModel::assemble(cm, cnot, swap, reverse)
    }

    /// The per-edge cost tables [`DeviceModel::uniform`] derives from a
    /// cost model.
    #[allow(clippy::type_complexity)]
    fn uniform_tables(
        cm: &CouplingMap,
        cost_model: CostModel,
    ) -> (
        BTreeMap<(usize, usize), u32>,
        BTreeMap<(usize, usize), u32>,
        BTreeMap<(usize, usize), u32>,
    ) {
        let mut cnot = BTreeMap::new();
        let mut swap = BTreeMap::new();
        let mut reverse = BTreeMap::new();
        for (c, t) in cm.edges() {
            cnot.insert((c, t), 1);
            if !cm.has_edge(t, c) {
                reverse.insert((t, c), cost_model.reverse);
            }
        }
        for (a, b) in cm.undirected_edges() {
            swap.insert((a, b), cost_model.swap);
        }
        (cnot, swap, reverse)
    }

    /// The fingerprint [`DeviceModel::uniform`] would carry, computed
    /// without building the model's distance matrices — for callers (e.g.
    /// cache lookups) that need the device's identity but not its
    /// distances.
    pub fn uniform_fingerprint(cm: &CouplingMap, cost_model: CostModel) -> u64 {
        let (cnot, swap, reverse) = DeviceModel::uniform_tables(cm, cost_model);
        fingerprint_of(cm, &cnot, &swap, &reverse)
    }

    /// The paper's uniform 7-and-4 model ([`CostModel::paper`]).
    pub fn paper(cm: CouplingMap) -> DeviceModel {
        DeviceModel::uniform(cm, CostModel::paper())
    }

    /// Overrides the SWAP cost of the coupled pair `{a, b}` (builder
    /// style) — e.g. a calibration-derived weight. Each call recomputes
    /// the derived matrices; use [`DeviceModel::with_swap_costs`] to
    /// apply a whole calibration in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` share no coupling edge.
    pub fn with_swap_cost(self, a: usize, b: usize, cost: u32) -> DeviceModel {
        self.with_swap_costs([(a, b, cost)])
    }

    /// Applies a batch of SWAP-cost overrides `(a, b, cost)` — a whole
    /// backend calibration — recomputing the derived matrices once at
    /// the end instead of per edge.
    ///
    /// # Panics
    ///
    /// Panics if any pair shares no coupling edge.
    pub fn with_swap_costs(
        mut self,
        costs: impl IntoIterator<Item = (usize, usize, u32)>,
    ) -> DeviceModel {
        for (a, b, cost) in costs {
            let key = (a.min(b), a.max(b));
            assert!(
                self.swap.contains_key(&key),
                "no coupling edge between p{a} and p{b}"
            );
            self.swap.insert(key, cost);
        }
        self.refresh()
    }

    /// Overrides the reversal surcharge for executing `CNOT(c, t)` against
    /// the lone edge `(t, c)` (builder style). See
    /// [`DeviceModel::with_reversal_costs`] for batch application.
    ///
    /// # Panics
    ///
    /// Panics unless executing `CNOT(c, t)` actually requires a reversal
    /// (i.e. `(t, c)` exists and `(c, t)` does not).
    pub fn with_reversal_cost(self, c: usize, t: usize, cost: u32) -> DeviceModel {
        self.with_reversal_costs([(c, t, cost)])
    }

    /// Applies a batch of reversal-surcharge overrides `(c, t, cost)`,
    /// recomputing the derived matrices once at the end.
    ///
    /// # Panics
    ///
    /// Panics unless each `CNOT(c, t)` actually requires a reversal.
    pub fn with_reversal_costs(
        mut self,
        costs: impl IntoIterator<Item = (usize, usize, u32)>,
    ) -> DeviceModel {
        for (c, t, cost) in costs {
            assert!(
                self.cm.requires_reversal(c, t),
                "CNOT(p{c} → p{t}) needs no reversal on this device"
            );
            self.reverse.insert((c, t), cost);
        }
        self.refresh()
    }

    /// Overrides the CNOT cost of the directed edge `(c, t)` (builder
    /// style). The cost above the baseline of 1 is charged as an
    /// execution overhead wherever a mapper places a logical CNOT on
    /// the edge ([`DeviceModel::execution_overhead`]), so dear edges
    /// repel placements in the exact objective and in heuristic
    /// pricing alike. See [`DeviceModel::with_cnot_costs`] for batch
    /// application.
    ///
    /// # Panics
    ///
    /// Panics if `(c, t)` is not a coupling edge.
    pub fn with_cnot_cost(self, c: usize, t: usize, cost: u32) -> DeviceModel {
        self.with_cnot_costs([(c, t, cost)])
    }

    /// Applies a batch of CNOT-cost overrides `(c, t, cost)` — a whole
    /// backend calibration. CNOT costs feed only the statistics and the
    /// fingerprint (routing is priced by the SWAP table), so unlike the
    /// SWAP/reversal builders this recomputes no distance matrix at all.
    ///
    /// # Panics
    ///
    /// Panics if any `(c, t)` is not a coupling edge.
    pub fn with_cnot_costs(
        mut self,
        costs: impl IntoIterator<Item = (usize, usize, u32)>,
    ) -> DeviceModel {
        for (c, t, cost) in costs {
            assert!(
                self.cm.has_edge(c, t),
                "(p{c}, p{t}) is not a coupling edge"
            );
            self.cnot.insert((c, t), cost);
        }
        self.stats.max_cnot_cost = self.cnot.values().copied().max().unwrap_or(0);
        self.fingerprint = self.compute_fingerprint();
        self
    }

    fn assemble(
        cm: CouplingMap,
        cnot: BTreeMap<(usize, usize), u32>,
        swap: BTreeMap<(usize, usize), u32>,
        reverse: BTreeMap<(usize, usize), u32>,
    ) -> DeviceModel {
        let m = cm.num_qubits();
        DeviceModel {
            cm,
            cnot,
            swap,
            reverse,
            hops: vec![vec![usize::MAX; m]; m],
            swap_dist: vec![vec![u64::MAX; m]; m],
            stats: DeviceStats {
                num_qubits: m,
                num_edges: 0,
                num_pairs: 0,
                diameter: 0,
                connected: true,
                all_to_all: true,
                has_unidirectional: false,
                min_swap_cost: 0,
                max_swap_cost: 0,
                max_cnot_cost: 0,
            },
            fingerprint: 0,
        }
        .refresh()
    }

    /// Recomputes the derived members (matrices, statistics, fingerprint)
    /// after a cost edit.
    fn refresh(mut self) -> DeviceModel {
        let m = self.cm.num_qubits();
        self.hops = self.cm.distance_matrix();

        // Dijkstra from every source over the per-pair SWAP costs.
        let adjacency: Vec<Vec<(usize, u64)>> = {
            let mut adj = vec![Vec::new(); m];
            for (&(a, b), &w) in &self.swap {
                adj[a].push((b, u64::from(w)));
                adj[b].push((a, u64::from(w)));
            }
            adj
        };
        self.swap_dist = (0..m)
            .map(|s| {
                use std::cmp::Reverse;
                use std::collections::BinaryHeap;
                let mut dist = vec![u64::MAX; m];
                dist[s] = 0;
                let mut heap = BinaryHeap::from([Reverse((0u64, s))]);
                while let Some(Reverse((d, u))) = heap.pop() {
                    if d > dist[u] {
                        continue;
                    }
                    for &(v, w) in &adjacency[u] {
                        let nd = d.saturating_add(w);
                        if nd < dist[v] {
                            dist[v] = nd;
                            heap.push(Reverse((nd, v)));
                        }
                    }
                }
                dist
            })
            .collect();

        let diameter = self
            .hops
            .iter()
            .flatten()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0);
        let connected = self.hops.iter().flatten().all(|&d| d != usize::MAX);
        let all_to_all = m < 2 || (connected && diameter <= 1);
        self.stats = DeviceStats {
            num_qubits: m,
            num_edges: self.cm.num_edges(),
            num_pairs: self.swap.len(),
            diameter,
            connected,
            all_to_all,
            has_unidirectional: !self.reverse.is_empty(),
            min_swap_cost: self.swap.values().copied().min().unwrap_or(0),
            max_swap_cost: self.swap.values().copied().max().unwrap_or(0),
            max_cnot_cost: self.cnot.values().copied().max().unwrap_or(0),
        };
        self.fingerprint = self.compute_fingerprint();
        self
    }

    /// FNV-1a over everything that steers an answer: size, directed edge
    /// list, and all three cost tables. The device *name* is excluded —
    /// identically shaped, identically calibrated devices share cached
    /// results whatever they are called.
    fn compute_fingerprint(&self) -> u64 {
        fingerprint_of(&self.cm, &self.cnot, &self.swap, &self.reverse)
    }

    /// The underlying coupling map.
    pub fn coupling_map(&self) -> &CouplingMap {
        &self.cm
    }

    /// Physical qubits `m`.
    pub fn num_qubits(&self) -> usize {
        self.cm.num_qubits()
    }

    /// The precomputed statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The stable content fingerprint — the device's identity in cache
    /// keys.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// CNOT cost of the directed edge `(c, t)` (`None` off-edge).
    pub fn cnot_cost(&self, c: usize, t: usize) -> Option<u32> {
        self.cnot.get(&(c, t)).copied()
    }

    /// SWAP cost of the coupled pair `{a, b}` (`None` off-edge).
    pub fn swap_cost(&self, a: usize, b: usize) -> Option<u32> {
        self.swap.get(&(a.min(b), a.max(b))).copied()
    }

    /// Reversal surcharge for executing `CNOT(c, t)` against the lone
    /// opposite edge (`None` when no reversal is needed or possible).
    pub fn reversal_cost(&self, c: usize, t: usize) -> Option<u32> {
        self.reverse.get(&(c, t)).copied()
    }

    /// The calibration overhead a mapper pays to execute `CNOT(c, t)`
    /// with the pair already adjacent: the executed edge's CNOT cost
    /// above the baseline of 1, plus the 4-H reversal surcharge when
    /// only the opposite edge exists; `None` when the pair is not
    /// coupled. Zero for direct CNOTs under the default models, so the
    /// paper's insertion-only objective is unchanged until a CNOT cost
    /// is actually calibrated. Both the SAT objective and the heuristics
    /// charge exactly this, keeping their costs comparable.
    pub fn execution_overhead(&self, c: usize, t: usize) -> Option<u64> {
        if self.cm.has_edge(c, t) {
            Some(u64::from(self.cnot[&(c, t)].saturating_sub(1)))
        } else if self.cm.has_edge(t, c) {
            let surcharge = u64::from(self.cnot[&(t, c)].saturating_sub(1));
            Some(surcharge + u64::from(self.reverse[&(c, t)]))
        } else {
            None
        }
    }

    /// Precomputed BFS hop distance (`None` if unreachable) — the
    /// replacement for per-call [`CouplingMap::distance`] BFS.
    pub fn hop(&self, a: usize, b: usize) -> Option<usize> {
        match self.hops[a][b] {
            usize::MAX => None,
            d => Some(d),
        }
    }

    /// The full hop matrix (`usize::MAX` marks unreachable pairs), in the
    /// exact shape [`CouplingMap::distance_matrix`] used to rebuild per
    /// call.
    pub fn hops(&self) -> &[Vec<usize>] {
        &self.hops
    }

    /// Cheapest total SWAP cost of making `a` and `b` adjacent... more
    /// precisely, of walking a qubit state from `a` to `b` along coupled
    /// pairs (`None` if unreachable).
    pub fn swap_distance(&self, a: usize, b: usize) -> Option<u64> {
        match self.swap_dist[a][b] {
            u64::MAX => None,
            d => Some(d),
        }
    }

    /// The full cost-weighted distance matrix (`u64::MAX` marks
    /// unreachable pairs).
    pub fn swap_distances(&self) -> &[Vec<u64>] {
        &self.swap_dist
    }

    /// The induced sub-model on `subset`, with *local* indices
    /// `0..subset.len()` and every per-edge cost carried over — what the
    /// exact engine's per-subset subinstances are priced with.
    ///
    /// # Panics
    ///
    /// Panics if `subset` contains duplicates or out-of-range qubits
    /// (like [`CouplingMap::subgraph`]).
    pub fn subgraph_model(&self, subset: &[usize]) -> DeviceModel {
        let local_cm = self.cm.subgraph(subset);
        let mut local = vec![usize::MAX; self.cm.num_qubits()];
        for (i, &p) in subset.iter().enumerate() {
            local[p] = i;
        }
        let keep = |&(a, b): &(usize, usize)| local[a] != usize::MAX && local[b] != usize::MAX;
        let relabel = |(a, b): (usize, usize)| (local[a], local[b]);
        let cnot = self
            .cnot
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(&k, &w)| (relabel(k), w))
            .collect();
        let swap = self
            .swap
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(&k, &w)| {
                let (a, b) = relabel(k);
                ((a.min(b), a.max(b)), w)
            })
            .collect();
        // A pair that is unidirectional on the full device is also
        // unidirectional in the induced subgraph (subgraphs only drop
        // edges)... but a *kept* missing-direction key only matters if the
        // present direction survived, which `keep` on the pair ensures.
        let reverse = self
            .reverse
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(&k, &w)| (relabel(k), w))
            .collect();
        DeviceModel::assemble(local_cm, cnot, swap, reverse)
    }

    /// The cost-weighted `swaps(π)` table of the induced subgraph on
    /// `subset` (local indices), answered from a process-wide cache keyed
    /// by the weighted local topology — so identically shaped, identically
    /// calibrated subsets share one table, across models and threads.
    ///
    /// # Panics
    ///
    /// Panics if `subset.len() > 8` (the exhaustive-regime bound).
    pub fn costed_table(&self, subset: &[usize]) -> Arc<CostedSwapTable> {
        let mut local = vec![usize::MAX; self.cm.num_qubits()];
        for (i, &p) in subset.iter().enumerate() {
            local[p] = i;
        }
        let mut edges: Vec<(usize, usize, u64)> = self
            .swap
            .iter()
            .filter(|(&(a, b), _)| local[a] != usize::MAX && local[b] != usize::MAX)
            .map(|(&(a, b), &w)| {
                let (la, lb) = (local[a], local[b]);
                (la.min(lb), la.max(lb), u64::from(w))
            })
            .collect();
        edges.sort_unstable();
        let key = (subset.len(), edges);

        let cache = COSTED_TABLE_CACHE.get_or_init(Mutex::default);
        {
            let mut cache = cache.lock().expect("cache lock");
            cache.tick += 1;
            let tick = cache.tick;
            if let Some((table, last_used)) = cache.map.get_mut(&key) {
                *last_used = tick;
                return Arc::clone(table);
            }
        }
        // Build outside the lock, like `SwapTable::shared`.
        let built = Arc::new(CostedSwapTable::for_weighted_edges(subset.len(), &key.1));
        let mut cache = cache.lock().expect("cache lock");
        cache.tick += 1;
        let tick = cache.tick;
        // A racing thread may have inserted meanwhile; either way this
        // access is a use, so stamp the entry with the fresh tick.
        let entry = cache.map.entry(key).or_insert((built, tick));
        entry.1 = tick;
        let table = Arc::clone(&entry.0);
        // Unlike the topology-only `SwapTable::shared` memo (whose key
        // universe is tiny), weighted keys are unbounded under drifting
        // calibrations: evict least-recently-used entries past the cap
        // so long-lived services cannot grow without limit.
        while cache.map.len() > COSTED_TABLE_CACHE_CAPACITY {
            let stalest = cache
                .map
                .iter()
                .min_by_key(|(_, (_, last_used))| *last_used)
                .map(|(k, _)| k.clone())
                .expect("over-capacity map is non-empty");
            cache.map.remove(&stalest);
        }
        table
    }
}

/// The shared FNV-1a content hash behind [`DeviceModel::fingerprint`]
/// and [`DeviceModel::uniform_fingerprint`]: size, directed edge list,
/// and all three cost tables, name excluded.
fn fingerprint_of(
    cm: &CouplingMap,
    cnot: &BTreeMap<(usize, usize), u32>,
    swap: &BTreeMap<(usize, usize), u32>,
    reverse: &BTreeMap<(usize, usize), u32>,
) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(cm.num_qubits() as u64);
    for (c, t) in cm.edges() {
        eat(c as u64);
        eat(t as u64);
        eat(u64::from(cnot.get(&(c, t)).copied().unwrap_or(1)));
    }
    eat(0xffff_ffff); // section separator
    for (&(a, b), &w) in swap {
        eat(a as u64);
        eat(b as u64);
        eat(u64::from(w));
    }
    eat(0xffff_fffe);
    for (&(c, t), &w) in reverse {
        eat(c as u64);
        eat(t as u64);
        eat(u64::from(w));
    }
    h
}

/// Key of the process-wide costed-table cache: subset size plus the
/// sorted, weighted local undirected edge list — everything that
/// determines the table.
type CostedTableKey = (usize, Vec<(usize, usize, u64)>);

/// Most entries the costed-table cache holds; an 8-qubit table is a few
/// megabytes, so this caps worst-case residency in the tens of MB.
const COSTED_TABLE_CACHE_CAPACITY: usize = 64;

#[derive(Default)]
struct CostedTableCache {
    map: HashMap<CostedTableKey, (Arc<CostedSwapTable>, u64)>,
    tick: u64,
}

static COSTED_TABLE_CACHE: OnceLock<Mutex<CostedTableCache>> = OnceLock::new();

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [swap {}..{}, {}]",
            self.cm,
            self.stats.min_swap_cost,
            self.stats.max_swap_cost,
            if self.stats.has_unidirectional {
                "directed"
            } else {
                "bidirectional"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use crate::Permutation;

    #[test]
    fn qx4_default_is_the_paper_model() {
        let model = DeviceModel::new(devices::ibm_qx4());
        for (a, b) in model.coupling_map().undirected_edges() {
            assert_eq!(model.swap_cost(a, b), Some(7));
        }
        // Reversal charged exactly on the missing directions.
        assert_eq!(model.reversal_cost(0, 1), Some(4));
        assert_eq!(model.reversal_cost(1, 0), None); // (1,0) is a real edge
        assert_eq!(model.reversal_cost(0, 3), None); // not coupled at all
        assert_eq!(model.execution_overhead(1, 0), Some(0));
        assert_eq!(model.execution_overhead(0, 1), Some(4));
        assert_eq!(model.execution_overhead(0, 3), None);
    }

    #[test]
    fn tokyo_default_is_bidirectional() {
        let model = DeviceModel::new(devices::ibm_tokyo());
        assert_eq!(model.swap_cost(0, 1), Some(3));
        assert!(!model.stats().has_unidirectional);
        assert_eq!(model.reversal_cost(0, 1), None);
    }

    #[test]
    fn uniform_model_charges_the_cost_model_everywhere() {
        // Even on a bidirectional device, `uniform` reproduces the seed's
        // flat accounting.
        let model = DeviceModel::uniform(devices::ibm_tokyo(), CostModel::paper());
        assert_eq!(model.swap_cost(0, 1), Some(7));
        assert!(!model.stats().has_unidirectional);
    }

    #[test]
    fn hop_matrix_matches_bfs() {
        let cm = devices::ibm_qx4();
        let model = DeviceModel::new(cm.clone());
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(model.hop(a, b), cm.distance(a, b));
            }
        }
        assert_eq!(model.stats().diameter, 2);
    }

    #[test]
    fn weighted_distances_follow_calibration() {
        // Line p0—p1—p2 (bidirectional): default SWAP cost 3 per hop.
        let cm = CouplingMap::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]).unwrap();
        let model = DeviceModel::new(cm);
        assert_eq!(model.swap_distance(0, 2), Some(6));
        // A dear first hop reroutes nothing on a line, but reprices it.
        let skewed = model.with_swap_cost(0, 1, 100);
        assert_eq!(skewed.swap_distance(0, 2), Some(103));
        assert_eq!(skewed.stats().max_swap_cost, 100);
        assert!(skewed.stats().cost_skew() > 30.0);
    }

    #[test]
    fn weighted_distance_takes_the_cheap_path() {
        // Diamond 0—1—3 / 0—2—3: calibration steers the cheapest route.
        let cm = CouplingMap::from_edges(
            4,
            [
                (0, 1),
                (1, 0),
                (1, 3),
                (3, 1),
                (0, 2),
                (2, 0),
                (2, 3),
                (3, 2),
            ],
        )
        .unwrap();
        let model = DeviceModel::new(cm)
            .with_swap_cost(0, 1, 50)
            .with_swap_cost(1, 3, 50);
        assert_eq!(model.swap_distance(0, 3), Some(6), "via p2");
        assert_eq!(model.hop(0, 3), Some(2));
    }

    #[test]
    fn uniform_fingerprint_matches_the_built_model() {
        for cm in [
            devices::ibm_qx4(),
            devices::ibm_tokyo(),
            devices::grid(3, 3),
        ] {
            for cost_model in [CostModel::paper(), CostModel::bidirectional()] {
                assert_eq!(
                    DeviceModel::uniform_fingerprint(&cm, cost_model),
                    DeviceModel::uniform(cm.clone(), cost_model).fingerprint(),
                );
            }
        }
    }

    #[test]
    fn fingerprint_tracks_content_not_name() {
        let a = DeviceModel::new(devices::ibm_qx4());
        let renamed = DeviceModel::new(
            CouplingMap::from_edges(5, devices::ibm_qx4().edges().collect::<Vec<_>>())
                .unwrap()
                .named("anything else"),
        );
        assert_eq!(a.fingerprint(), renamed.fingerprint());
        assert_ne!(
            a.fingerprint(),
            DeviceModel::new(devices::ibm_qx2()).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            a.clone().with_reversal_cost(0, 1, 5).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            a.clone().with_cnot_cost(1, 0, 2).fingerprint()
        );
    }

    #[test]
    fn stats_flag_cnot_surcharge() {
        let model = DeviceModel::new(devices::fully_connected(4));
        assert_eq!(model.stats().max_cnot_cost, 1);
        assert!(!model.stats().has_cnot_surcharge());
        let calibrated = model.with_cnot_cost(0, 1, 5);
        assert_eq!(calibrated.stats().max_cnot_cost, 5);
        assert!(calibrated.stats().has_cnot_surcharge());
    }

    #[test]
    fn cnot_cost_batches_skip_the_matrix_recompute() {
        let base = DeviceModel::new(devices::ibm_qx4());
        let batched = base.clone().with_cnot_costs([(1, 0, 3), (3, 4, 2)]);
        let sequential = base.clone().with_cnot_cost(1, 0, 3).with_cnot_cost(3, 4, 2);
        assert_eq!(batched, sequential);
        // CNOT edits reprice nothing the matrices hold: distances stay
        // exactly the base model's, only stats + fingerprint move.
        assert_eq!(batched.hops(), base.hops());
        assert_eq!(batched.swap_distances(), base.swap_distances());
        assert_ne!(batched.fingerprint(), base.fingerprint());
        assert_eq!(batched.stats().max_cnot_cost, 3);
        assert_eq!(batched.cnot_cost(1, 0), Some(3));
        assert_eq!(batched.cnot_cost(3, 4), Some(2));
    }

    #[test]
    fn stats_flag_all_to_all() {
        let k4 = DeviceModel::new(devices::fully_connected(4));
        assert!(k4.stats().all_to_all);
        assert!(!k4.stats().has_unidirectional);
        assert_eq!(k4.stats().diameter, 1);
        let qx4 = DeviceModel::new(devices::ibm_qx4());
        assert!(!qx4.stats().all_to_all);
        assert!(qx4.stats().connected);
        let split = DeviceModel::new(CouplingMap::from_edges(4, [(0, 1), (2, 3)]).unwrap());
        assert!(!split.stats().connected);
        assert!(!split.stats().all_to_all);
    }

    #[test]
    fn subgraph_model_carries_costs_over() {
        let model = DeviceModel::new(devices::ibm_qx4()).with_swap_cost(2, 3, 11);
        let sub = model.subgraph_model(&[2, 3, 4]); // local 0=p3, 1=p4, 2=p5
        assert_eq!(sub.num_qubits(), 3);
        assert_eq!(sub.swap_cost(0, 1), Some(11)); // the calibrated pair
        assert_eq!(sub.swap_cost(1, 2), Some(7));
        assert_eq!(sub.reversal_cost(2, 3), None);
        // Missing directions survive projection: (3,2) ∈ CM, (2,3) ∉ CM →
        // local (1,0) present, (0,1) missing.
        assert_eq!(sub.reversal_cost(0, 1), Some(4));
    }

    #[test]
    fn costed_tables_are_cached_and_weighted() {
        let model = DeviceModel::new(devices::ibm_qx4());
        let a = model.costed_table(&[2, 3, 4]);
        let b = model.costed_table(&[2, 3, 4]);
        assert!(Arc::ptr_eq(&a, &b));
        // Triangle of unidirectional edges: every transposition costs 7.
        assert_eq!(a.cost(&Permutation::transposition(3, 0, 1)), Some(7));
        // A different calibration is a different table.
        let skewed = model.clone().with_swap_cost(3, 4, 70);
        let c = skewed.costed_table(&[2, 3, 4]);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), a.len());
    }

    #[test]
    fn display_summarizes_costs() {
        let s = DeviceModel::new(devices::ibm_qx4()).to_string();
        assert!(s.contains("IBM QX4"));
        assert!(s.contains("swap 7..7"));
        assert!(s.contains("directed"));
    }

    use crate::coupling::CouplingMap;
}
