//! Property-based tests for permutation algebra, swap tables and layouts.

use proptest::prelude::*;
use qxmap_arch::{connected_subsets, devices, CouplingMap, Layout, Permutation, SwapTable};

fn permutation_strategy(n: usize) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |_, mut rng| {
        let mut image: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            image.swap(i, j);
        }
        Permutation::from_image(image)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Group axioms: associativity, inverse, identity.
    #[test]
    fn permutation_group_axioms(
        a in permutation_strategy(6),
        b in permutation_strategy(6),
        c in permutation_strategy(6),
    ) {
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
        prop_assert!(a.compose(&a.inverse()).is_identity());
        let id = Permutation::identity(6);
        prop_assert_eq!(a.compose(&id), a.clone());
        prop_assert_eq!(id.compose(&a), a.clone());
    }

    /// `min_transpositions` is invariant under inversion and zero iff id.
    #[test]
    fn transposition_count_invariants(a in permutation_strategy(7)) {
        prop_assert_eq!(a.min_transpositions(), a.inverse().min_transpositions());
        prop_assert_eq!(a.min_transpositions() == 0, a.is_identity());
        prop_assert!(a.min_transpositions() < 7);
    }

    /// swaps(π) on QX4: symmetric under inversion, triangle inequality
    /// under composition, witness length equals the reported distance.
    #[test]
    fn swap_table_metric_properties(
        a in permutation_strategy(5),
        b in permutation_strategy(5),
    ) {
        let table = SwapTable::new(&devices::ibm_qx4());
        let da = table.swaps(&a).expect("QX4 is connected");
        let db = table.swaps(&b).expect("connected");
        let dainv = table.swaps(&a.inverse()).expect("connected");
        prop_assert_eq!(da, dainv, "swaps(π) must equal swaps(π⁻¹)");
        let dab = table.swaps(&a.compose(&b)).expect("connected");
        prop_assert!(dab <= da + db, "triangle inequality violated");
        prop_assert_eq!(table.sequence(&a).unwrap().len() as u32, da);
        // Lower bound from free (non-adjacent) transpositions.
        prop_assert!(da as usize >= a.min_transpositions());
    }

    /// Layout ↔ permutation round trip.
    #[test]
    fn layout_permutation_roundtrip(pi in permutation_strategy(5)) {
        let mut layout = Layout::identity(5, 5);
        layout.apply_permutation(&pi);
        let recovered = Layout::identity(5, 5).permutation_to(&layout).expect("same logical set");
        prop_assert_eq!(recovered, pi);
    }

    /// Applying the witness SWAP sequence to a layout lands exactly on the
    /// permuted layout.
    #[test]
    fn witness_sequences_move_layouts(pi in permutation_strategy(5)) {
        let cm = devices::ibm_qx4();
        let table = SwapTable::new(&cm);
        let seq = table.sequence(&pi).expect("connected").to_vec();
        let mut via_swaps = Layout::identity(5, 5);
        for (a, b) in seq {
            prop_assert!(cm.connected_either(a, b), "witness must use edges");
            via_swaps.swap_phys(a, b);
        }
        let mut via_perm = Layout::identity(5, 5);
        via_perm.apply_permutation(&pi);
        prop_assert_eq!(via_swaps, via_perm);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Connected subsets really are connected, and the count matches a
    /// brute-force check on random graphs.
    #[test]
    fn connected_subsets_are_sound_and_complete(
        edges in prop::collection::vec((0usize..7, 0usize..7), 0..12),
        size in 1usize..4,
    ) {
        let cm = CouplingMap::from_edges(
            7,
            edges.into_iter().filter(|(a, b)| a != b),
        ).expect("filtered self-loops");
        let subs = connected_subsets(&cm, size);
        for s in &subs {
            prop_assert!(cm.is_connected_subset(s), "{s:?} not connected");
        }
        // Completeness: bitmask enumeration finds the same count.
        let mut count = 0usize;
        for mask in 0u32..(1 << 7) {
            if mask.count_ones() as usize != size {
                continue;
            }
            let subset: Vec<usize> = (0..7).filter(|i| mask & (1 << i) != 0).collect();
            if cm.is_connected_subset(&subset) {
                count += 1;
            }
        }
        prop_assert_eq!(subs.len(), count);
    }

    /// Distance matrices are symmetric metrics on connected devices.
    #[test]
    fn distance_matrix_is_a_metric(seed in 0u64..1000) {
        let cm = match seed % 4 {
            0 => devices::ibm_qx4(),
            1 => devices::ibm_qx5(),
            2 => devices::linear(8),
            _ => devices::grid(3, 3),
        };
        let d = cm.distance_matrix();
        let m = cm.num_qubits();
        for a in 0..m {
            prop_assert_eq!(d[a][a], 0);
            for b in 0..m {
                prop_assert_eq!(d[a][b], d[b][a]);
                for c in 0..m {
                    prop_assert!(d[a][c] <= d[a][b] + d[b][c]);
                }
            }
        }
    }
}
