//! The portfolio engine: heuristics and the exact engine racing on
//! threads, coupled through a shared best-cost bound and cooperative
//! cancellation, with transparent fallback outside the exact regime.

use std::time::Instant;

use qxmap_core::SolveControl;

use crate::engine::{exact_in_regime, Engine, ExactEngine, HeuristicEngine};
use crate::error::MapperError;
use crate::report::MapReport;
use crate::request::{Guarantee, MapRequest};

/// Races the heuristic baselines and — when the device is within the
/// exact method's regime — the SAT engine, all on scoped threads sharing
/// one [`SolveControl`]:
///
/// * each heuristic tightens the shared best-cost bound the moment it
///   finishes, so the exact search prunes to strictly better solutions
///   without waiting for the pool (and a zero-cost heuristic win cancels
///   the exact run outright — nothing can improve on 0);
/// * if nothing better than the heuristic winner exists, the exact run
///   comes back `Infeasible`, which — when the request uses the complete
///   `BeforeEveryGate` formulation — *certifies the heuristic result as
///   optimal*: the report is upgraded to `proved_optimal` without ever
///   re-deriving the model. Restricted Section 4.2 strategies search a
///   smaller space, so their exhaustion upgrades nothing;
/// * a [`MapRequest::with_deadline`] budget stops the exact side
///   cooperatively; the race then answers with the best verified result
///   in hand, and [`MapReport::winner`] says which engine produced it;
/// * outside the regime (devices beyond
///   [`qxmap_core::MAX_EXACT_QUBITS`] qubits) the best heuristic result
///   is returned as-is under [`Guarantee::BestEffort`].
///
/// The naive floor baseline is always part of the pool, so a portfolio
/// report is never worse than `NaiveMapper` on the same instance —
/// deadline or not.
///
/// ```
/// use std::time::Duration;
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_map::{Engine, MapRequest, Portfolio};
///
/// let request = MapRequest::new(paper_example(), devices::ibm_qx4())
///     .with_conflict_budget(Some(100_000))
///     .with_deadline(Duration::from_secs(30));
/// let report = Portfolio::new().run(&request)?;
/// // Whichever engine won, the racing path never loses to the naive
/// // floor (its proven minimum here is 4).
/// assert!(report.cost.objective >= 4);
/// assert!(report.engine.starts_with("portfolio/"));
/// println!("won by {} in {:?}", report.winner, report.elapsed);
/// # Ok::<(), qxmap_map::MapperError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Portfolio {
    stochastic_trials: u64,
}

impl Portfolio {
    /// The default portfolio: naive + SABRE heuristics, exact when in
    /// regime.
    pub fn new() -> Portfolio {
        Portfolio {
            stochastic_trials: 0,
        }
    }

    /// Additionally races `trials` seeded stochastic-swap runs in the
    /// heuristic pool.
    pub fn with_stochastic_trials(mut self, trials: u64) -> Portfolio {
        self.stochastic_trials = trials;
        self
    }
}

impl Default for Portfolio {
    fn default() -> Portfolio {
        Portfolio::new()
    }
}

/// What the cost-model-aware scheduler decided to race for one request:
/// the heuristic pool, whether the exact engine joins, and which
/// baselines were skipped as dominated (with the model-derived reason).
#[derive(Debug)]
pub(crate) struct RacePlan {
    pub(crate) pool: Vec<HeuristicEngine>,
    pub(crate) run_exact: bool,
    pub(crate) skipped: Vec<(&'static str, &'static str)>,
}

impl Portfolio {
    /// Which engines the cost-model-aware scheduler would *skip* for
    /// `request`, as `(engine, reason)` pairs — the decisions
    /// [`Portfolio::run`] acts on, exposed for tooling and capacity
    /// planning. An empty answer means the full pool races.
    ///
    /// ```
    /// use qxmap_arch::devices;
    /// use qxmap_circuit::Circuit;
    /// use qxmap_map::{MapRequest, Portfolio};
    ///
    /// let k6 = MapRequest::new(Circuit::new(3), devices::fully_connected(6));
    /// let skipped = Portfolio::new().skipped_baselines(&k6);
    /// assert!(skipped.iter().any(|(engine, _)| *engine == "sabre"));
    ///
    /// let qx4 = MapRequest::new(Circuit::new(3), devices::ibm_qx4());
    /// assert!(Portfolio::new().skipped_baselines(&qx4).is_empty());
    /// ```
    pub fn skipped_baselines(&self, request: &MapRequest) -> Vec<(&'static str, &'static str)> {
        self.plan_race(request).skipped
    }
}

impl Portfolio {
    /// How many stochastic trials the scheduler actually races on a
    /// device with these statistics, given the configured baseline of
    /// [`Portfolio::with_stochastic_trials`]. Randomized search earns
    /// its keep exactly where the choice *between* SWAPs matters:
    ///
    /// * tiny, uniform devices (diameter ≤ 2, no cost skew) leave the
    ///   sampler almost nothing to discover beyond what one trial finds
    ///   — the configured count is halved (never below one trial);
    /// * calibrated skew ([`DeviceStats::cost_skew`] ≥ 2) makes SWAP
    ///   choices price-sensitive, and a wide device (diameter ≥ 6)
    ///   multiplies the routes per interaction — each doubles the
    ///   count, capped at 4× the configured baseline.
    ///
    /// The scaling only redistributes the caller's budget; a configured
    /// count of 0 still means no stochastic racer at all.
    fn scaled_stochastic_trials(&self, stats: &qxmap_arch::DeviceStats) -> u64 {
        let base = self.stochastic_trials;
        if base == 0 {
            return 0;
        }
        let skewed = stats.cost_skew() >= 2.0;
        let wide = stats.diameter >= 6;
        if stats.diameter <= 2 && !skewed {
            return (base / 2).max(1);
        }
        let factor = match (skewed, wide) {
            (true, true) => 4,
            (true, false) | (false, true) => 2,
            (false, false) => 1,
        };
        base.saturating_mul(factor)
    }

    /// The cost-model-aware scheduler: reads the cheap
    /// [`DeviceStats`](qxmap_arch::DeviceStats) off the request's device
    /// model and skips baselines the statistics prove dominated, instead
    /// of always racing the full pool — and scales the stochastic
    /// racer's trial count to the device (see
    /// [`Portfolio::scaled_stochastic_trials`]).
    ///
    /// The skips fire only on a **provably free** device — all-to-all,
    /// bidirectional, and with no CNOT-cost calibration above the
    /// baseline — where *every* layout executes every gate at cost 0:
    /// SABRE and the stochastic mapper reduce to exactly the naive
    /// floor's output, and the exact engine cannot improve on the
    /// floor's self-certifying zero. On a merely all-to-all device the
    /// full pool still races: unidirectional edges make reversals
    /// layout-dependent, and calibrated CNOT costs make dear edges worth
    /// steering around — both are exactly what the other engines find.
    ///
    /// The naive floor always races: the portfolio's "never worse than
    /// naive" contract is scheduler-independent.
    pub(crate) fn plan_race(&self, request: &MapRequest) -> RacePlan {
        let stats = request.device_model().stats();
        let mut pool = vec![HeuristicEngine::naive()];
        let mut skipped: Vec<(&'static str, &'static str)> = Vec::new();
        let provably_free =
            stats.all_to_all && !stats.has_unidirectional && !stats.has_cnot_surcharge();
        if provably_free {
            skipped.push((
                "sabre",
                "free all-to-all device: every pair is adjacent in both directions \
                 at baseline cost, so no layout beats the shortest-path floor",
            ));
            if self.stochastic_trials > 0 {
                skipped.push((
                    "stochastic",
                    "free all-to-all device: randomized SWAP search has no SWAPs to choose",
                ));
            }
        } else {
            pool.push(HeuristicEngine::sabre());
            if self.stochastic_trials > 0 {
                pool.push(HeuristicEngine::stochastic(
                    self.scaled_stochastic_trials(stats),
                ));
            }
        }
        let mut run_exact = exact_in_regime(request);
        if run_exact && provably_free {
            run_exact = false;
            skipped.push((
                "exact",
                "free all-to-all device: the naive floor achieves cost 0, \
                 which nothing improves on",
            ));
        }
        RacePlan {
            pool,
            run_exact,
            skipped,
        }
    }
}

impl Engine for Portfolio {
    fn name(&self) -> &str {
        "portfolio"
    }

    fn cache_signature(&self) -> String {
        // The pool's composition changes the race's answers: distinct
        // configurations must never share cache entries.
        format!("portfolio:s{}", self.stochastic_trials)
    }

    fn run(&self, request: &MapRequest) -> Result<MapReport, MapperError> {
        let start = Instant::now();
        let trace = request.trace();
        // One control handle couples the whole race: heuristics tighten
        // its bound as they finish, the exact engine prunes against it
        // mid-run and stops on its cancel flag.
        let control = SolveControl::new();
        if let Some(u) = request.upper_bound() {
            control.bound().tighten(u);
        }

        // The cost-model-aware scheduler prunes the pool before any
        // thread spawns: dominated baselines (and a provably unhelpful
        // exact run) never start. Planning first also forces the lazily
        // built device model, so the clone below carries it instead of
        // rebuilding the all-pairs matrices on the heuristic side.
        let plan = self.plan_race(request);
        let pool = plan.pool;
        for (engine, reason) in &plan.skipped {
            // Zero-duration events: the timeline names every racer that
            // never started, and why the scheduler pruned it.
            trace.event(&format!("race/skip/{engine}"), reason, 1);
        }

        // Heuristic side of the race. Guarantee and upper-bound demands
        // are settled at the portfolio level, not per baseline — an
        // over-bound heuristic winner is still useful for seeding the
        // exact search. Structural errors (too many qubits) are terminal,
        // but Unroutable is not: the layer heuristics give up on
        // disconnected devices that the exact engine's connected-subset
        // search may still map.
        let heuristic_request = request
            .clone()
            .with_guarantee(Guarantee::BestEffort)
            .with_upper_bound(None)
            // Racer spans land under "race/<engine>" on the shared
            // timeline (the engines record their own spans).
            .with_trace(trace.scoped("race"));

        // Exact side, racing concurrently when the device is in regime
        // and the scheduler found it worth starting. It begins from the
        // caller's bound alone and picks up heuristic costs subinstance
        // by subinstance as they land in the shared bound; its deadline
        // comes straight from the request.
        let run_exact = plan.run_exact;
        let mut pool_results: Vec<Result<MapReport, MapperError>> = Vec::new();
        let mut exact_outcome: Option<Result<MapReport, MapperError>> = None;
        let race_start = Instant::now();
        std::thread::scope(|scope| {
            let exact_handle = run_exact.then(|| {
                let control = control.clone();
                scope.spawn(|| {
                    let exact_request = request
                        .clone()
                        .with_guarantee(Guarantee::BestEffort)
                        .with_upper_bound(None)
                        .with_trace(trace.scoped("race"));
                    ExactEngine::new().with_control(control).run(&exact_request)
                })
            });
            let handles: Vec<_> = pool
                .iter()
                .map(|engine| {
                    let control = &control;
                    let heuristic_request = &heuristic_request;
                    scope.spawn(move || {
                        // Heuristics receive the race's control handle:
                        // the stochastic trial pool stops early when a
                        // zero-cost win cancels the race (and observes
                        // the request's deadline on its own).
                        let result = engine.run_inner(heuristic_request, Some(control));
                        if let Ok(report) = &result {
                            control.bound().tighten(report.cost.objective);
                            trace.event("race/bound", engine.name(), report.cost.objective);
                            if report.cost.objective == 0 {
                                // Provably unbeatable: stop the exact run.
                                control.cancel();
                                trace.event("race/cancel", engine.name(), 1);
                            }
                        }
                        result
                    })
                })
                .collect();
            pool_results = handles
                .into_iter()
                .map(|h| h.join().expect("heuristic engines do not panic"))
                .collect();
            exact_outcome =
                exact_handle.map(|h| h.join().expect("the exact engine does not panic"));
        });
        // The race span is recorded after the scope, not held across it: a
        // guard moved into `finish` below couldn't be dropped at every
        // return site.
        trace.record("race", race_start, race_start.elapsed());

        let mut pool_best: Option<MapReport> = None;
        let mut pool_error: Option<MapperError> = None;
        for result in pool_results {
            match result {
                Ok(report) => {
                    if pool_best
                        .as_ref()
                        .is_none_or(|b| report.cost.objective < b.cost.objective)
                    {
                        pool_best = Some(report);
                    }
                }
                Err(e @ MapperError::Unroutable) => pool_error = Some(e),
                Err(e) => return Err(e),
            }
        }
        let had_pool_result = pool_best.is_some();
        if let Some(b) = pool_best.as_mut() {
            b.engine = format!("{}/{}", self.name(), b.engine);
        }

        // A caller-declared upper bound is a hard contract: results at or
        // above it may not be returned. Heuristic winners that miss it
        // only served to tighten the exact search, never as answers.
        let user_bound = request.upper_bound();
        let best = match (user_bound, pool_best) {
            (Some(u), Some(b)) if b.cost.objective >= u => None,
            (_, b) => b,
        };

        // The caller waited for the whole race, not just the winner.
        let finish = |mut report: MapReport| {
            report.elapsed = start.elapsed();
            trace.event("race/winner", &report.winner, 1);
            report.trace = trace.finish();
            report
        };

        // A zero objective is unbeatable under non-negative costs —
        // trivially minimal, whatever was or wasn't inserted. (The
        // winning heuristic already cancelled the exact run.)
        if best.as_ref().is_some_and(|b| b.cost.objective == 0) {
            let mut best = best.expect("checked above");
            best.proved_optimal = true;
            return Ok(finish(best));
        }

        // Why there is no returnable candidate: the whole pool failed to
        // route, or the caller's bound pruned every result.
        let no_candidate = || -> MapperError {
            if !had_pool_result {
                return pool_error.clone().expect("pool is never empty");
            }
            MapperError::BoundUnmet {
                bound: user_bound.expect("a result existed, so the bound pruned it"),
            }
        };

        if !exact_in_regime(request) {
            return match (best, request.guarantee()) {
                (Some(best), Guarantee::BestEffort) => Ok(finish(best)),
                (None, Guarantee::BestEffort) => Err(no_candidate()),
                (_, Guarantee::Optimal) => Err(MapperError::OptimalityUnavailable {
                    reason: format!(
                        "device has {} qubits; exact proofs stop at {}",
                        request.device().num_qubits(),
                        qxmap_core::MAX_EXACT_QUBITS
                    ),
                }),
            };
        }

        // In regime but scheduler-skipped: the skip fires only when the
        // model proves nothing below the naive floor's zero exists — a
        // model-level certificate independent of the SAT formulation. A
        // zero-cost winner already returned above, so reaching here means
        // the caller's bound pruned it (nothing strictly below it exists:
        // Infeasible, whatever the strategy) or the whole pool failed.
        let Some(outcome) = exact_outcome else {
            return match best {
                // Unreachable in practice — the naive floor achieves 0 on
                // any provably-free device — but an honest fallback.
                Some(best) => Ok(finish(best)),
                None if user_bound.is_some() => Err(MapperError::Infeasible),
                None => Err(no_candidate()),
            };
        };

        // An exhaustive Unsat run only certifies the heuristic winner when
        // the exact formulation is complete: a restricted Section 4.2
        // strategy searches a smaller space, so its Infeasible proves
        // nothing about mappings outside that space.
        let formulation_complete = *request.strategy() == qxmap_core::Strategy::BeforeEveryGate;

        match outcome {
            Ok(mut report) => {
                report.engine = format!("{}/{}", self.name(), report.winner);
                // The exact racer can come back *worse* than the pool: a
                // candidate found early (before the heuristics tightened
                // the shared bound) survives a deadline or budget cut.
                // The race answers with whichever result is cheaper; the
                // exact result wins ties because it may carry a proof.
                let chosen = match best {
                    Some(b) if b.cost.objective < report.cost.objective => b,
                    _ => report,
                };
                if request.guarantee() == Guarantee::Optimal && !chosen.proved_optimal {
                    return Err(MapperError::proof_budget_exhausted());
                }
                Ok(finish(chosen))
            }
            // Nothing strictly below the shared bound exists *in the
            // searched space* — and every value that bound took during the
            // race (the caller's bound, heuristic costs) is at or above
            // the returnable winner's cost. With the complete formulation
            // that certifies the heuristic winner as optimal (or, with no
            // winner, proves the user bound infeasible); under a
            // restricted strategy it only means the restricted search
            // found nothing better.
            Err(MapperError::Infeasible) => match (best, request.guarantee()) {
                (Some(mut best), guarantee) => {
                    if formulation_complete {
                        best.proved_optimal = true;
                    }
                    if guarantee == Guarantee::Optimal && !best.proved_optimal {
                        return Err(MapperError::OptimalityUnavailable {
                            reason: format!(
                                "the {:?} strategy restricts the exact search; its \
                                 exhaustion is no proof of global minimality",
                                request.strategy()
                            ),
                        });
                    }
                    Ok(finish(best))
                }
                (None, _) if formulation_complete => Err(MapperError::Infeasible),
                (None, Guarantee::BestEffort) => Err(no_candidate()),
                (None, Guarantee::Optimal) => Err(MapperError::OptimalityUnavailable {
                    reason: "the restricted exact search found nothing below the bound".to_string(),
                }),
            },
            // A budget (conflicts or deadline) ran out before the
            // certificate: keep the heuristic result, honestly unproved.
            Err(MapperError::BudgetExhausted) => match (best, request.guarantee()) {
                (Some(best), Guarantee::BestEffort) => Ok(finish(best)),
                (None, Guarantee::BestEffort) => Err(no_candidate()),
                (_, Guarantee::Optimal) => Err(MapperError::proof_budget_exhausted()),
            },
            // A subset slipped past the regime check (e.g. subsets
            // disabled on a mid-size device): fall back to the heuristic.
            Err(MapperError::DeviceTooLarge { .. }) => match (best, request.guarantee()) {
                (Some(best), Guarantee::BestEffort) => Ok(finish(best)),
                (None, Guarantee::BestEffort) => Err(no_candidate()),
                (_, Guarantee::Optimal) => Err(MapperError::OptimalityUnavailable {
                    reason: "the instance exceeds the exact method's regime".to_string(),
                }),
            },
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::{paper_example, Circuit};

    #[test]
    fn paper_example_is_proved_minimal() {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let report = Portfolio::new().run(&request).unwrap();
        assert_eq!(report.cost.objective, 4);
        assert!(report.proved_optimal);
        assert!(report.engine.starts_with("portfolio/"));
        report
            .verify(&paper_example(), &devices::ibm_qx4())
            .unwrap();
    }

    #[test]
    fn large_device_falls_back_without_error() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.cx(3, 4);
        for cm in [devices::ibm_qx5(), devices::ibm_tokyo()] {
            let request = MapRequest::new(c.clone(), cm.clone());
            let report = Portfolio::new().run(&request).unwrap();
            assert!(!report.engine.contains("exact"));
            report.verify(&c, &cm).unwrap();
        }
    }

    #[test]
    fn large_device_with_optimal_demand_is_an_error() {
        // q0 interacts with 7 partners; Tokyo's max degree is 6, so every
        // layout needs insertions and nothing can be trivially proved.
        let mut c = Circuit::new(8);
        for t in 1..8 {
            c.cx(0, t);
        }
        let request = MapRequest::new(c, devices::ibm_tokyo()).with_guarantee(Guarantee::Optimal);
        assert!(matches!(
            Portfolio::new().run(&request),
            Err(MapperError::OptimalityUnavailable { .. })
        ));
    }

    #[test]
    fn zero_insertion_is_proved_without_exact_run() {
        let mut c = Circuit::new(2);
        c.cx(1, 0); // a QX4 edge: nothing to insert
        let request = MapRequest::new(c, devices::ibm_qx4());
        let report = Portfolio::new().run(&request).unwrap();
        assert_eq!(report.cost.objective, 0);
        assert!(report.proved_optimal);
    }

    #[test]
    fn stochastic_trials_join_the_pool() {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let report = Portfolio::new()
            .with_stochastic_trials(3)
            .run(&request)
            .unwrap();
        assert_eq!(report.cost.objective, 4);
        assert!(report.proved_optimal);
    }

    #[test]
    fn restricted_strategy_exhaustion_is_no_certificate() {
        // The interaction graph of this circuit cannot embed in QX4, so
        // with no permutation points the exact formulation is Infeasible
        // for structural reasons — which must NOT be read as a proof that
        // the heuristic fallback is optimal.
        let mut c = Circuit::new(5);
        for t in 1..5 {
            c.cx(0, t);
        }
        c.cx(1, 3);
        c.cx(1, 4);
        let request = MapRequest::new(c, devices::ibm_qx4())
            .with_strategy(qxmap_core::Strategy::Custom(vec![]));
        let report = Portfolio::new().run(&request).unwrap();
        assert!(
            !report.proved_optimal,
            "a restricted search's exhaustion certified a heuristic result"
        );
        // The same instance under the complete default formulation *is*
        // certifiable.
        let request = MapRequest::new(
            {
                let mut c = Circuit::new(5);
                for t in 1..5 {
                    c.cx(0, t);
                }
                c.cx(1, 3);
                c.cx(1, 4);
                c
            },
            devices::ibm_qx4(),
        );
        let report = Portfolio::new().run(&request).unwrap();
        assert!(report.proved_optimal);
    }

    #[test]
    fn caller_upper_bound_is_a_hard_contract() {
        // The known optimum is 4. Asking for strictly better must never
        // hand back the (worse) heuristic result — it is Infeasible, with
        // the exhaustive run as certificate.
        let request =
            MapRequest::new(paper_example(), devices::ibm_qx4()).with_upper_bound(Some(4));
        assert_eq!(
            Portfolio::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
        // A looser caller bound lets the portfolio answer below it.
        let request =
            MapRequest::new(paper_example(), devices::ibm_qx4()).with_upper_bound(Some(5));
        let report = Portfolio::new().run(&request).unwrap();
        assert_eq!(report.cost.objective, 4);
        assert!(report.proved_optimal);
        // Out of the exact regime, a bound the heuristics cannot beat is
        // an error, not a silently-worse report.
        let mut big = Circuit::new(9);
        for q in 0..8 {
            big.cx(q, q + 1);
        }
        let request = MapRequest::new(big, devices::ibm_tokyo()).with_upper_bound(Some(1));
        assert_eq!(
            Portfolio::new().run(&request).unwrap_err(),
            MapperError::BoundUnmet { bound: 1 }
        );
    }

    #[test]
    fn scheduler_skips_dominated_baselines_on_all_to_all_devices() {
        // K6 (bidirectional all-to-all): SABRE, stochastic AND the exact
        // engine are all dominated by the naive floor's guaranteed-zero
        // result.
        let request = MapRequest::new(Circuit::new(4), devices::fully_connected(6));
        let plan = Portfolio::new()
            .with_stochastic_trials(3)
            .plan_race(&request);
        assert_eq!(plan.pool.len(), 1, "only the naive floor races");
        assert!(!plan.run_exact);
        let skipped: Vec<&str> = plan.skipped.iter().map(|(e, _)| *e).collect();
        assert_eq!(skipped, vec!["sabre", "stochastic", "exact"]);

        // QX4 keeps the full pool and the exact racer.
        let request = MapRequest::new(Circuit::new(4), devices::ibm_qx4());
        let plan = Portfolio::new()
            .with_stochastic_trials(3)
            .plan_race(&request);
        assert_eq!(plan.pool.len(), 3);
        assert!(plan.run_exact);
        assert!(plan.skipped.is_empty());
    }

    #[test]
    fn stochastic_trials_scale_with_device_statistics() {
        use crate::engine::Baseline;
        use qxmap_arch::DeviceModel;
        let planned_trials = |request: &MapRequest| -> Option<u64> {
            let plan = Portfolio::new()
                .with_stochastic_trials(8)
                .plan_race(request);
            plan.pool.iter().find_map(|e| match e.baseline() {
                Baseline::Stochastic { trials } => Some(trials),
                _ => None,
            })
        };

        // Tiny uniform device (QX4: diameter 2, no skew): half the budget.
        let tiny = MapRequest::new(Circuit::new(3), devices::ibm_qx4());
        assert_eq!(planned_trials(&tiny), Some(4));

        // Wide device (linear-8: diameter 7): doubled.
        let wide = MapRequest::new(Circuit::new(3), devices::linear(8));
        assert_eq!(planned_trials(&wide), Some(16));

        // Skewed calibration on the same tiny device: doubled, not halved
        // — price-sensitive SWAP choices are what sampling explores.
        let skewed_model = DeviceModel::new(devices::ibm_qx4()).with_swap_cost(3, 4, 70);
        assert!(skewed_model.stats().cost_skew() >= 2.0);
        let skewed = MapRequest::for_model(Circuit::new(3), skewed_model);
        assert_eq!(planned_trials(&skewed), Some(16));

        // Skewed *and* wide: the full 4x, capped there.
        let both_model = DeviceModel::new(devices::linear(8)).with_swap_cost(0, 1, 70);
        let both = MapRequest::for_model(Circuit::new(3), both_model);
        assert_eq!(planned_trials(&both), Some(32));

        // A provably free device still races no stochastic trials at all.
        let free = MapRequest::new(Circuit::new(3), devices::fully_connected(6));
        assert_eq!(planned_trials(&free), None);

        // And a configured count of one never collapses to zero.
        let one = Portfolio::new()
            .with_stochastic_trials(1)
            .plan_race(&MapRequest::new(Circuit::new(3), devices::ibm_qx4()));
        assert!(one
            .pool
            .iter()
            .any(|e| matches!(e.baseline(), Baseline::Stochastic { trials: 1 })));
    }

    #[test]
    fn directed_or_calibrated_all_to_all_keeps_the_full_race() {
        use qxmap_arch::{CouplingMap, DeviceModel};
        // A *directed* all-to-all device: reversals depend on the layout,
        // so neither SABRE nor the exact racer is dominated by the naive
        // floor's identity layout.
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                edges.push((a, b));
            }
        }
        let directed = CouplingMap::from_edges(4, edges).unwrap();
        let request = MapRequest::new(Circuit::new(3), directed);
        let plan = Portfolio::new().plan_race(&request);
        assert_eq!(plan.pool.len(), 2, "sabre still races");
        assert!(plan.run_exact);
        assert!(plan.skipped.is_empty());

        // A bidirectional all-to-all device with one dear calibrated CNOT
        // edge: the identity layout is no longer free, so the exact racer
        // must stay in (it can find a layout avoiding the dear edge).
        let model = DeviceModel::new(devices::fully_connected(4)).with_cnot_cost(0, 1, 5);
        let request = MapRequest::for_model(Circuit::new(3), model);
        let plan = Portfolio::new().plan_race(&request);
        assert!(plan.run_exact);
        assert!(plan.skipped.is_empty());
    }

    #[test]
    fn calibrated_overhead_is_no_certificate_and_exact_recovers_the_optimum() {
        use qxmap_arch::DeviceModel;
        // Zero insertions is not zero cost: on a CNOT-calibrated model the
        // naive identity layout pays the dear edge's execution overhead,
        // must not claim a minimality proof, and the exact racer finds the
        // genuinely free placement one edge over.
        let model = DeviceModel::new(devices::linear(3)).with_cnot_cost(0, 1, 5);
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let request = MapRequest::for_model(c.clone(), model);
        let naive = HeuristicEngine::naive().run(&request).unwrap();
        assert_eq!(naive.cost.added_gates, 0);
        assert_eq!(naive.cost.objective, 4, "the dear edge's overhead");
        assert!(!naive.proved_optimal, "a costly run certified itself");
        let report = Portfolio::new().run(&request).unwrap();
        assert_eq!(
            report.cost.objective, 0,
            "logical pair placed on the free edge"
        );
        assert!(report.proved_optimal);
        report.verify(&c, request.device()).unwrap();
    }

    #[test]
    fn all_to_all_run_still_returns_a_verified_proved_result() {
        // The acceptance scenario: dominated baselines are skipped, yet
        // the race still answers — verified and proved optimal.
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        c.cx(3, 1);
        c.cx(2, 0);
        let cm = devices::fully_connected(6);
        let request = MapRequest::new(c.clone(), cm.clone());
        let report = Portfolio::new().run(&request).unwrap();
        assert_eq!(report.cost.objective, 0);
        assert!(report.proved_optimal);
        report.verify(&c, &cm).unwrap();
        assert!(report.engine.starts_with("portfolio/"));
    }

    #[test]
    fn scheduler_skip_keeps_the_infeasibility_certificate() {
        // The optimum on a free all-to-all device is 0; a bound of 0
        // demands strictly better, which is Infeasible — certified by
        // the scheduler's skip itself, not mislabeled as an
        // out-of-regime error (K6 is well inside the exact regime).
        let request =
            MapRequest::new(Circuit::new(3), devices::fully_connected(6)).with_upper_bound(Some(0));
        assert_eq!(
            Portfolio::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
        let request = MapRequest::new(Circuit::new(3), devices::fully_connected(6))
            .with_upper_bound(Some(0))
            .with_guarantee(Guarantee::Optimal);
        assert_eq!(
            Portfolio::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
        // The certificate is model-level, independent of the SAT
        // formulation: restricted strategies get it too (no exact search
        // ran to be "restricted").
        let request = MapRequest::new(Circuit::new(3), devices::fully_connected(6))
            .with_upper_bound(Some(0))
            .with_strategy(qxmap_core::Strategy::Custom(vec![]))
            .with_guarantee(Guarantee::Optimal);
        assert_eq!(
            Portfolio::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
    }

    #[test]
    fn too_many_qubits_is_terminal() {
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        let request = MapRequest::new(c, devices::ibm_qx4());
        assert!(matches!(
            Portfolio::new().run(&request),
            Err(MapperError::TooManyQubits {
                logical: 6,
                physical: 5
            })
        ));
    }
}
