//! The whole-solve result cache.
//!
//! The paper frames mapping cost as a function of the circuit's
//! interaction structure and the device's coupling graph alone — which is
//! exactly a cache key. [`SolveCache`] memoizes *verified* [`MapReport`]s
//! keyed by (canonical circuit skeleton, device coupling graph, request
//! options, budget class, engine signature), so a repeated request — or a
//! relabeled-register equivalent of one — is answered from memory in
//! microseconds instead of re-running a heuristic race or a SAT solver.
//!
//! ## Key anatomy
//!
//! * **Skeleton** — [`qxmap_circuit::CircuitSkeleton`], the circuit up to
//!   qubit renaming. Two QASM files with renamed registers share one
//!   entry; the hit is served by translating the stored layouts through
//!   the register correspondence (the physical circuit itself is
//!   label-free and reused verbatim).
//! * **Device** — the [`qxmap_arch::DeviceModel`] fingerprint: size,
//!   directed edge list *and every per-edge cost* in one stable hash. A
//!   different coupling graph — or the same graph under a different
//!   calibration — can change both cost and circuit, so it always misses.
//! * **Options** — strategy, subset flag, guarantee, declared upper
//!   bound, and seed: everything else that steers an engine's answer
//!   (the cost model itself is part of the device fingerprint).
//! * **Budget class** — the (conflict budget, deadline) pair. Results
//!   computed under one budget are only reused for requests with the
//!   *same* budgets — except proved-optimal results, which are published
//!   to every budget class of the same key (an optimum is an optimum, no
//!   matter how much time the asker was willing to spend).
//! * **Engine signature** — [`crate::Engine::cache_signature`]: different
//!   engines (or differently configured ones) answer differently and
//!   never share entries.
//!
//! ## Bounds, stats, invalidation
//!
//! The cache is a bounded LRU (least-recently-*used*, where lookups and
//! inserts both refresh recency); overflowing evicts the stalest entry
//! and counts it in [`SolveCacheStats::evictions`]. Entries are immutable
//! and verified before insertion ([`MapReport::verify`]), so there is no
//! other invalidation: a key pins everything the answer depends on.
//! Errors are never cached — an `Infeasible` proof is cheap to re-derive
//! relative to the risk of serving it to a subtly different request.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use qxmap_arch::{CouplingMap, DeviceModel, Layout};
use qxmap_circuit::CircuitSkeleton;
use qxmap_core::Strategy;

use crate::report::MapReport;
use crate::request::{Guarantee, MapRequest};
use crate::snapshot::{self, Reader, SnapshotError, Writer, MAGIC, SNAPSHOT_VERSION};

/// Default capacity of the process-wide [`SolveCache::shared`] instance,
/// used when [`SOLVE_CACHE_CAPACITY_ENV`] is unset or unparsable.
pub const DEFAULT_SOLVE_CACHE_CAPACITY: usize = 256;

/// Environment variable overriding the process-wide
/// [`SolveCache::shared`] capacity at startup (a positive integer entry
/// count). Read once, when the shared cache is first touched.
pub const SOLVE_CACHE_CAPACITY_ENV: &str = "QXMAP_SOLVE_CACHE_CAPACITY";

/// Parses a capacity override out of an environment value; rejects
/// non-numbers and zero (the cache must hold at least one entry).
fn capacity_override(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok().filter(|&c| c > 0)
}

/// Hit/miss/eviction counters and the current size of a [`SolveCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolveCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to solve.
    pub misses: u64,
    /// Entries evicted to make room (LRU order).
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// Approximate heap footprint of the held entries, in bytes —
    /// per-entry size accounting (gates, layouts, correspondence tables)
    /// summed on insert and released on eviction. An estimate for
    /// capacity planning, not an allocator measurement.
    pub approx_bytes: usize,
}

/// Everything besides the skeleton that pins an engine's answer. Also
/// used by `map_many`'s batch dedup so grouping and cache identity can
/// never drift apart.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// [`crate::Engine::cache_signature`] of the answering engine.
    engine: String,
    /// The circuit up to qubit relabeling (read by `map_many`'s dedup to
    /// translate duplicate answers without recanonicalizing).
    pub(crate) skeleton: CircuitSkeleton,
    /// The device identity: [`qxmap_arch::DeviceModel::fingerprint`],
    /// covering size, directed edges and every per-edge cost (so a
    /// calibration override is a different device as far as the cache is
    /// concerned).
    device: u64,
    /// Encoded permutation-site strategy (variant tag + parameters).
    strategy: Vec<usize>,
    use_subsets: bool,
    optimal_demanded: bool,
    upper_bound: Option<u64>,
    seed: u64,
    /// `Some((conflict_budget, deadline))` identifies a budget class;
    /// `None` is the proved tier, where optimality certificates are
    /// published for every budget class of the same key.
    budgets: Option<(Option<u64>, Option<Duration>)>,
}

/// The cache key of `request` under `engine`'s signature — the identity
/// `map_many` groups duplicates by.
pub(crate) fn request_key(engine: &str, request: &MapRequest) -> CacheKey {
    CacheKey::of(engine, request, CircuitSkeleton::of(request.circuit()))
}

/// Serves a duplicate request directly from an already-solved sibling:
/// `solved` is the verified answer to the circuit canonicalized by
/// `solved_skeleton`, and `request_skeleton` canonicalizes the duplicate
/// (the skeletons must be equal — `map_many`'s dedup grouping guarantees
/// it, and both were already computed for that grouping). The report
/// comes back with the same cache-served contract as a
/// [`SolveCache::lookup`] hit — translated layouts, flag, `cache/`
/// winner prefix, lookup-time `elapsed` — but independently of the
/// cache's eviction policy, so a batch wider than the cache never falls
/// back to re-solving its duplicates. Returns `None` when the canonical
/// skeletons differ (the requests were not grouped together).
pub(crate) fn serve_duplicate(
    solved_skeleton: &CircuitSkeleton,
    solved: MapReport,
    request_skeleton: &CircuitSkeleton,
) -> Option<MapReport> {
    let start = Instant::now();
    let sigma = request_skeleton.correspondence_to(solved_skeleton)?;
    let mut report = solved;
    if sigma.iter().enumerate().any(|(q, &s)| q != s) {
        report.initial_layout = remap_layout(&report.initial_layout, &sigma);
        report.final_layout = remap_layout(&report.final_layout, &sigma);
    }
    if !report.served_from_cache {
        // A representative that was itself cache-served already carries
        // the prefix; never stack cache/cache/.
        report.winner = format!("cache/{}", report.winner);
    }
    report.served_from_cache = true;
    report.elapsed = start.elapsed();
    // The representative's trace timeline describes its own request, not
    // this duplicate's.
    report.trace = None;
    Some(report)
}

/// A cache lookup built from a circuit's canonical skeleton instead of
/// the circuit itself — the key to the skeleton-first warm path.
///
/// A [`MapRequest`] needs a materialized [`qxmap_circuit::Circuit`];
/// computing one from QASM text pays conversion, gate inlining and a
/// gate-vector allocation. But the [`SolveCache`] key never looks at the
/// circuit — only at its [`CircuitSkeleton`], which a single parse pass
/// can produce directly (`qxmap_qasm::parse_skeleton`). A probe
/// carries that skeleton plus the same option knobs a request does, with
/// the same defaults; [`SolveCache::probe`] answers a hit exactly as
/// [`SolveCache::lookup`] would have for the materialized request, and a
/// miss falls through to the ordinary solve path bit-for-bit.
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::{paper_example, CircuitSkeleton};
/// use qxmap_map::{map_one, probe_one, CacheProbe, MapRequest};
///
/// let circuit = paper_example();
/// let probe = CacheProbe::new(CircuitSkeleton::of(&circuit), &devices::ibm_qx4());
/// assert!(probe_one(&probe).is_none(), "nothing solved yet");
/// map_one(&MapRequest::new(circuit, devices::ibm_qx4()))?;
/// let hit = probe_one(&probe).expect("skeleton probe hits the solved entry");
/// assert!(hit.served_from_cache);
/// # Ok::<(), qxmap_map::MapperError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacheProbe {
    skeleton: CircuitSkeleton,
    device_fingerprint: u64,
    guarantee: Guarantee,
    strategy: Strategy,
    use_subsets: bool,
    conflict_budget: Option<u64>,
    deadline: Option<Duration>,
    upper_bound: Option<u64>,
    seed: u64,
}

impl CacheProbe {
    /// A probe for `skeleton` against `device` under the defaults of
    /// [`MapRequest::new`]: the paper's uniform cost model, best-effort
    /// guarantee, permutations before every gate, subsets on, no
    /// budgets, seed 0. Every knob has a builder mirroring the request's.
    pub fn new(skeleton: CircuitSkeleton, device: &CouplingMap) -> CacheProbe {
        CacheProbe {
            skeleton,
            device_fingerprint: DeviceModel::uniform_fingerprint(
                device,
                qxmap_arch::CostModel::default(),
            ),
            guarantee: Guarantee::default(),
            strategy: Strategy::default(),
            use_subsets: true,
            conflict_budget: None,
            deadline: None,
            upper_bound: None,
            seed: 0,
        }
    }

    /// A probe against an explicit [`DeviceModel`] — matches requests
    /// built with [`MapRequest::for_model`] (per-edge calibration is
    /// part of the device fingerprint, so the model identity must come
    /// from the same place).
    pub fn for_model(skeleton: CircuitSkeleton, model: &DeviceModel) -> CacheProbe {
        CacheProbe {
            device_fingerprint: model.fingerprint(),
            ..CacheProbe::new(skeleton, model.coupling_map())
        }
    }

    /// Mirrors [`MapRequest::with_guarantee`].
    pub fn with_guarantee(mut self, guarantee: Guarantee) -> CacheProbe {
        self.guarantee = guarantee;
        self
    }

    /// Mirrors [`MapRequest::with_strategy`].
    pub fn with_strategy(mut self, strategy: Strategy) -> CacheProbe {
        self.strategy = strategy;
        self
    }

    /// Mirrors [`MapRequest::with_subsets`].
    pub fn with_subsets(mut self, on: bool) -> CacheProbe {
        self.use_subsets = on;
        self
    }

    /// Mirrors [`MapRequest::with_conflict_budget`].
    pub fn with_conflict_budget(mut self, budget: Option<u64>) -> CacheProbe {
        self.conflict_budget = budget;
        self
    }

    /// Mirrors [`MapRequest::with_deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> CacheProbe {
        self.deadline = Some(deadline);
        self
    }

    /// Mirrors [`MapRequest::with_upper_bound`].
    pub fn with_upper_bound(mut self, bound: Option<u64>) -> CacheProbe {
        self.upper_bound = bound;
        self
    }

    /// Mirrors [`MapRequest::with_seed`].
    pub fn with_seed(mut self, seed: u64) -> CacheProbe {
        self.seed = seed;
        self
    }

    /// The probe's skeleton (serve-layer logging and tests).
    pub fn skeleton(&self) -> &CircuitSkeleton {
        &self.skeleton
    }

    /// The cache key this probe resolves to under `engine` — field for
    /// field what [`CacheKey::of`] builds from the materialized request.
    fn key(&self, engine: &str) -> CacheKey {
        CacheKey {
            engine: engine.to_string(),
            skeleton: self.skeleton.clone(),
            device: self.device_fingerprint,
            strategy: encode_strategy(&self.strategy),
            use_subsets: self.use_subsets,
            optimal_demanded: self.guarantee == Guarantee::Optimal,
            upper_bound: self.upper_bound,
            seed: self.seed,
            budgets: Some((self.conflict_budget, self.deadline)),
        }
    }
}

/// Encodes a [`Strategy`] as the stable integer sequence cache keys use.
fn encode_strategy(strategy: &Strategy) -> Vec<usize> {
    match strategy {
        Strategy::BeforeEveryGate => vec![0],
        Strategy::DisjointQubits => vec![1],
        Strategy::OddGates => vec![2],
        Strategy::QubitTriangle => vec![3],
        Strategy::Window(k) => vec![4, *k],
        Strategy::Custom(points) => {
            let mut v = Vec::with_capacity(points.len() + 1);
            v.push(5);
            v.extend(points.iter().copied());
            v
        }
    }
}

impl CacheKey {
    fn of(engine: &str, request: &MapRequest, skeleton: CircuitSkeleton) -> CacheKey {
        CacheKey {
            engine: engine.to_string(),
            skeleton,
            // The cheap fingerprint path: a cache hit must not pay for
            // the model's all-pairs matrices it will never use.
            device: request.device_fingerprint(),
            strategy: encode_strategy(request.strategy()),
            use_subsets: request.use_subsets(),
            optimal_demanded: request.guarantee() == Guarantee::Optimal,
            upper_bound: request.upper_bound(),
            seed: request.seed(),
            budgets: Some((request.conflict_budget(), request.deadline())),
        }
    }

    /// The budget-erased variant under which proved-optimal results are
    /// published.
    fn proved_tier(&self) -> CacheKey {
        CacheKey {
            budgets: None,
            ..self.clone()
        }
    }

    /// Serializes the key into a snapshot or journal stream.
    pub(crate) fn write(&self, w: &mut Writer) {
        w.str(&self.engine);
        snapshot::write_skeleton(w, &self.skeleton);
        w.u64(self.device);
        w.usizes(&self.strategy);
        let flags = u8::from(self.use_subsets) | (u8::from(self.optimal_demanded) << 1);
        w.u8(flags);
        w.opt_u64(self.upper_bound);
        w.u64(self.seed);
        match &self.budgets {
            None => w.u8(0),
            Some((conflicts, deadline)) => {
                w.u8(1);
                w.opt_u64(*conflicts);
                match deadline {
                    None => w.u8(0),
                    Some(d) => {
                        w.u8(1);
                        w.duration(*d);
                    }
                }
            }
        }
    }

    /// Deserializes a key from a snapshot or journal stream.
    pub(crate) fn read(r: &mut Reader<'_>) -> Result<CacheKey, SnapshotError> {
        let engine = r.str()?;
        let skeleton = snapshot::read_skeleton(r)?;
        let device = r.u64()?;
        let strategy = r.usizes()?;
        let flags = r.u8()?;
        if flags & !0b11 != 0 {
            return Err(SnapshotError::Corrupted("key flags"));
        }
        let upper_bound = r.opt_u64()?;
        let seed = r.u64()?;
        let budgets = match r.u8()? {
            0 => None,
            1 => {
                let conflicts = r.opt_u64()?;
                let deadline = match r.u8()? {
                    0 => None,
                    1 => Some(r.duration()?),
                    _ => return Err(SnapshotError::Corrupted("deadline tag")),
                };
                Some((conflicts, deadline))
            }
            _ => return Err(SnapshotError::Corrupted("budget tag")),
        };
        Ok(CacheKey {
            engine,
            skeleton,
            device,
            strategy,
            use_subsets: flags & 0b01 != 0,
            optimal_demanded: flags & 0b10 != 0,
            upper_bound,
            seed,
            budgets,
        })
    }
}

struct Entry {
    /// The stored report, unmarked (cache bookkeeping is applied to the
    /// clone served to the caller, never to the stored original). Behind
    /// `Arc` so the copy made under the cache lock is a pointer bump, not
    /// a deep clone of a circuit.
    report: Arc<MapReport>,
    /// `canon_to_original[l]` is the solved circuit's qubit carrying the
    /// canonical label `l` — composed with a hitting request's own
    /// canonicalization, this translates layouts between register
    /// namings.
    canon_to_original: Vec<usize>,
    /// Approximate heap footprint of this entry, charged to
    /// [`SolveCacheStats::approx_bytes`] while it lives.
    approx_bytes: usize,
    /// Recency stamp for LRU eviction.
    last_used: u64,
}

/// Rough per-entry size: the dominant members are the mapped circuit's
/// gate list and the layout/correspondence vectors. Good enough for the
/// capacity-planning stat; no attempt at allocator-exact numbers.
fn approx_entry_bytes(report: &MapReport, canon_to_original: &[usize]) -> usize {
    const WORD: usize = std::mem::size_of::<usize>();
    let circuit = report.mapped.gates().len() * 4 * WORD;
    let layouts = 4 * report.mapped.num_qubits() * WORD;
    let correspondence = canon_to_original.len() * WORD;
    let windows = report.windows.as_ref().map_or(0, |certs| {
        certs
            .iter()
            .map(|c| {
                std::mem::size_of::<crate::report::WindowCertificate>()
                    + (c.qubits.len() + c.region.len()) * WORD
                    + c.engine.len()
            })
            .sum()
    });
    std::mem::size_of::<MapReport>() + circuit + layouts + correspondence + windows
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
}

/// Monitoring counters, kept *outside* the entry mutex so
/// [`SolveCache::stats`] is a handful of relaxed atomic loads: a metrics
/// endpoint or soak harness polling stats at high frequency never
/// contends with — or is blocked behind — an in-flight insert holding
/// the write lock. Mutators update these while holding the entry lock,
/// so any torn read a poller could observe is transient by construction.
#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    entries: AtomicUsize,
    /// Sum of the live entries' `approx_bytes`.
    approx_bytes: AtomicUsize,
}

/// A bounded, thread-safe, whole-solve result cache, keyed by (canonical
/// circuit skeleton, device coupling graph, request options, budget
/// class, engine signature) — see the module-level documentation above
/// for the key anatomy. The [process-wide instance](SolveCache::shared)
/// is shared by every [`crate::Engine::run_cached`] and
/// [`crate::map_many`] call.
pub struct SolveCache {
    inner: Mutex<Inner>,
    counters: CacheCounters,
    capacity: usize,
    /// When a [`crate::Journal`] is attached, every stored entry is also
    /// sent here (after the entry lock is released) for the background
    /// writer to append — the response path never touches the file.
    journal: Mutex<Option<mpsc::Sender<crate::journal::Event>>>,
}

impl SolveCache {
    /// A fresh cache holding at most `capacity` entries (at least one).
    pub fn with_capacity(capacity: usize) -> SolveCache {
        SolveCache {
            inner: Mutex::new(Inner::default()),
            counters: CacheCounters::default(),
            capacity: capacity.max(1),
            journal: Mutex::new(None),
        }
    }

    /// The process-wide instance behind [`crate::Engine::run_cached`],
    /// [`crate::map_one`] and [`crate::map_many`]. Its capacity is a
    /// runtime knob: the [`SOLVE_CACHE_CAPACITY_ENV`] environment
    /// variable (read once, at first touch), falling back to
    /// [`DEFAULT_SOLVE_CACHE_CAPACITY`]; embedders wanting programmatic
    /// control build their own [`SolveCache::with_capacity`] instance.
    pub fn shared() -> &'static SolveCache {
        static SHARED: OnceLock<SolveCache> = OnceLock::new();
        SHARED.get_or_init(|| {
            let env = std::env::var(SOLVE_CACHE_CAPACITY_ENV).ok();
            let capacity =
                capacity_override(env.as_deref()).unwrap_or(DEFAULT_SOLVE_CACHE_CAPACITY);
            SolveCache::with_capacity(capacity)
        })
    }

    /// The most entries this cache will hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks `request` up under `engine`'s signature. On a hit, returns
    /// the stored report translated to the request's register naming and
    /// marked cache-served: [`MapReport::served_from_cache`] set,
    /// [`MapReport::winner`] prefixed with `cache/`, and
    /// [`MapReport::elapsed`] reporting this lookup's own (near-zero)
    /// wall-clock rather than the original solve's.
    pub fn lookup(&self, engine: &str, request: &MapRequest) -> Option<MapReport> {
        let start = Instant::now();
        let skeleton = CircuitSkeleton::of(request.circuit());
        let labels: Vec<usize> = skeleton.canonical_labels().to_vec();
        let key = CacheKey::of(engine, request, skeleton);
        self.lookup_key(key, &labels, start)
    }

    /// Looks a [`CacheProbe`] up under `engine`'s signature — the
    /// skeleton-first warm path: the probe carries a circuit's canonical
    /// skeleton instead of the circuit, so an ingest pipeline that
    /// computed the skeleton during parsing can ask "was this already
    /// solved?" without ever materializing a
    /// [`qxmap_circuit::Circuit`]. Hits are identical to
    /// [`SolveCache::lookup`] hits (translated layouts, `cache/` winner
    /// prefix, lookup-time `elapsed`), misses count as misses, and a
    /// miss-then-[`SolveCache::lookup`] on the materialized circuit
    /// probes exactly the same key.
    pub fn probe(&self, engine: &str, probe: &CacheProbe) -> Option<MapReport> {
        let start = Instant::now();
        let labels: Vec<usize> = probe.skeleton.canonical_labels().to_vec();
        self.lookup_key(probe.key(engine), &labels, start)
    }

    /// The shared hit path of [`SolveCache::lookup`] and
    /// [`SolveCache::probe`]: proved tier first, then the budget class,
    /// then layout translation through `labels` outside the lock.
    fn lookup_key(&self, mut key: CacheKey, labels: &[usize], start: Instant) -> Option<MapReport> {
        let (stored, canon_to_original) = {
            let mut inner = self.inner.lock().expect("no panics under the lock");
            inner.tick += 1;
            let tick = inner.tick;
            // The proved tier first (a certificate serves every budget
            // class), then the exact budget class — probed by flipping
            // the key's budget field in place, so no key is cloned and
            // the copy taken under the lock is an `Arc` pointer bump.
            let budgets = key.budgets.take();
            let probe = |inner: &mut Inner, key: &CacheKey| {
                let entry = inner.map.get_mut(key)?;
                entry.last_used = tick;
                Some((Arc::clone(&entry.report), entry.canon_to_original.clone()))
            };
            let hit = probe(&mut inner, &key).or_else(|| {
                key.budgets = budgets;
                probe(&mut inner, &key)
            });
            match hit {
                Some(found) => {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    found
                }
                None => {
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        // Deep-clone outside the lock, then translate the layouts into
        // the request's register naming: qubit `q` of the request plays
        // the solved circuit's qubit `canon_to_original[label(q)]` (key
        // equality guarantees the canonical forms agree, so the
        // composition is a permutation).
        let mut report = (*stored).clone();
        let sigma: Vec<usize> = labels.iter().map(|&l| canon_to_original[l]).collect();
        if sigma.iter().enumerate().any(|(q, &s)| q != s) {
            report.initial_layout = remap_layout(&report.initial_layout, &sigma);
            report.final_layout = remap_layout(&report.final_layout, &sigma);
        }
        report.served_from_cache = true;
        report.winner = format!("cache/{}", report.winner);
        report.elapsed = start.elapsed();
        Some(report)
    }

    /// Stores `report` as the answer to `request` under `engine`'s
    /// signature. The report is structurally verified against the request
    /// first ([`MapReport::verify`]); unverifiable or already
    /// cache-served reports are dropped silently. Proved-optimal reports
    /// are additionally published to the budget-erased tier, serving
    /// every budget class of the same key.
    pub fn insert(&self, engine: &str, request: &MapRequest, report: &MapReport) {
        if report.served_from_cache || report.verify(request.circuit(), request.device()).is_err() {
            return;
        }
        let skeleton = CircuitSkeleton::of(request.circuit());
        // canonical label -> the solved circuit's qubit.
        let mut canon_to_original = vec![0usize; skeleton.num_qubits()];
        for (q, &l) in skeleton.canonical_labels().iter().enumerate() {
            canon_to_original[l] = q;
        }
        let key = CacheKey::of(engine, request, skeleton);
        // A stored report must serve *any* future request with the same
        // key: the solving request's trace timeline is not part of the
        // answer and is never cached.
        let mut stored = report.clone();
        stored.trace = None;
        let shared_report = Arc::new(stored);
        let bytes = approx_entry_bytes(report, &canon_to_original);
        let journal = self
            .journal
            .lock()
            .expect("no panics under the lock")
            .clone();
        let mut journaled: Vec<CacheKey> = Vec::new();
        {
            let mut inner = self.inner.lock().expect("no panics under the lock");
            inner.tick += 1;
            let tick = inner.tick;
            let entry = || Entry {
                report: Arc::clone(&shared_report),
                canon_to_original: canon_to_original.clone(),
                approx_bytes: bytes,
                last_used: tick,
            };
            let store = |inner: &mut Inner, key: CacheKey, entry: Entry| {
                self.counters
                    .approx_bytes
                    .fetch_add(entry.approx_bytes, Ordering::Relaxed);
                if let Some(replaced) = inner.map.insert(key, entry) {
                    self.counters
                        .approx_bytes
                        .fetch_sub(replaced.approx_bytes, Ordering::Relaxed);
                }
            };
            if report.proved_optimal {
                if journal.is_some() {
                    journaled.push(key.proved_tier());
                }
                store(&mut inner, key.proved_tier(), entry());
            }
            if journal.is_some() {
                journaled.push(key.clone());
            }
            store(&mut inner, key, entry());
            evict_to_capacity(&mut inner, self.capacity, &self.counters);
            self.counters
                .entries
                .store(inner.map.len(), Ordering::Relaxed);
        }
        // Journal notification happens strictly after the entry lock is
        // released: the caller's response path pays a key clone and two
        // channel sends at worst, never file IO.
        if let Some(tx) = journal {
            for key in journaled {
                let _ = tx.send(crate::journal::Event::Entry {
                    key: Box::new(key),
                    canon_to_original: canon_to_original.clone(),
                    report: Arc::clone(&shared_report),
                });
            }
        }
    }

    /// Attaches (or detaches) the journal writer's event channel — every
    /// subsequent [`SolveCache::insert`] forwards its stored entries.
    pub(crate) fn set_journal(&self, sender: Option<mpsc::Sender<crate::journal::Event>>) {
        *self.journal.lock().expect("no panics under the lock") = sender;
    }

    /// Every held entry — key, correspondence, shared report, recency
    /// stamp — sorted least-recently-used first: the shared substrate of
    /// [`SolveCache::export_snapshot`] and journal compaction. The lock
    /// is held only for the key clones and `Arc` bumps.
    pub(crate) fn export_entries(&self) -> Vec<(CacheKey, Vec<usize>, Arc<MapReport>, u64)> {
        let mut entries: Vec<(CacheKey, Vec<usize>, Arc<MapReport>, u64)> = {
            let inner = self.inner.lock().expect("no panics under the lock");
            inner
                .map
                .iter()
                .map(|(key, entry)| {
                    (
                        key.clone(),
                        entry.canon_to_original.clone(),
                        Arc::clone(&entry.report),
                        entry.last_used,
                    )
                })
                .collect()
        };
        entries.sort_by_key(|&(_, _, _, last_used)| last_used);
        entries
    }

    /// Admits one already-decoded entry — the journal replay path.
    /// Unlike [`SolveCache::insert`] the report is trusted as decoded
    /// (its checksum already passed), but the correspondence table is
    /// still validated as a permutation because lookups index through it
    /// unchecked. Returns `Ok(false)` when the key is already live (the
    /// live entry wins); never forwards to the journal, so replaying a
    /// file a journal is attached to cannot echo records back into it.
    pub(crate) fn admit_decoded(
        &self,
        key: CacheKey,
        canon_to_original: Vec<usize>,
        report: Arc<MapReport>,
    ) -> Result<bool, SnapshotError> {
        if let Some(defect) = correspondence_defect(&key, &canon_to_original) {
            return Err(SnapshotError::Corrupted(defect));
        }
        let bytes = approx_entry_bytes(&report, &canon_to_original);
        let mut inner = self.inner.lock().expect("no panics under the lock");
        if inner.map.contains_key(&key) {
            return Ok(false);
        }
        inner.tick += 1;
        let tick = inner.tick;
        self.counters
            .approx_bytes
            .fetch_add(bytes, Ordering::Relaxed);
        inner.map.insert(
            key,
            Entry {
                report,
                canon_to_original,
                approx_bytes: bytes,
                last_used: tick,
            },
        );
        evict_to_capacity(&mut inner, self.capacity, &self.counters);
        self.counters
            .entries
            .store(inner.map.len(), Ordering::Relaxed);
        Ok(true)
    }

    /// Serializes every held entry — the budget-class entries *and* the
    /// budget-erased proved-optimal tier — into the versioned snapshot
    /// format. Entries are written in recency
    /// order (least-recently-used first), so an importer replaying them
    /// reconstructs this cache's LRU order; the stream is sealed with a
    /// checksum and carries [`SNAPSHOT_VERSION`].
    ///
    /// This is the serving tier's restart/replica warm-start surface:
    /// the daemon snapshots on shutdown and imports on boot, so a
    /// repeated request after a restart is still a sub-millisecond
    /// cache hit.
    pub fn export_snapshot(&self) -> Vec<u8> {
        // Snapshot the entries under the lock — a key clone and an `Arc`
        // bump each — and do the real work (deep circuit/layout
        // encoding) outside it, so a live daemon's sub-millisecond
        // lookups never stall behind a multi-megabyte serialization.
        let entries = self.export_entries();
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(entries.len() as u64);
        for (key, canon_to_original, report, _) in &entries {
            key.write(&mut w);
            w.usizes(canon_to_original);
            snapshot::write_report(&mut w, report);
        }
        let sum = snapshot::checksum(w.bytes());
        w.u64(sum);
        w.into_bytes()
    }

    /// Imports a snapshot produced by [`SolveCache::export_snapshot`],
    /// merging its entries into this cache, and returns how many entries
    /// were admitted. Imports are all-or-nothing per file: a bad magic,
    /// a mismatched [`SNAPSHOT_VERSION`], a truncated stream, a checksum
    /// mismatch or structurally invalid data rejects the whole snapshot
    /// with no entry admitted.
    ///
    /// Keys already present keep their live entry (it is at least as
    /// fresh as the snapshot's), and *every* live entry outranks *every*
    /// imported one in LRU order — a snapshot is history, so capacity
    /// pressure evicts snapshot entries before anything the running
    /// process actually used. Among themselves, imported entries keep
    /// the snapshot's recency order, so a capacity-constrained import
    /// into a fresh cache keeps exactly the entries the exporter's own
    /// LRU policy would have kept. Imported entries are charged to the
    /// byte accounting like any insert; hit/miss counters are untouched
    /// (they describe this process's lifetime, not the snapshot's).
    ///
    /// # Errors
    ///
    /// Returns the [`SnapshotError`] describing the first defect found.
    pub fn import_snapshot(&self, bytes: &[u8]) -> Result<usize, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(if MAGIC.starts_with(bytes) {
                SnapshotError::Truncated
            } else {
                SnapshotError::BadMagic
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut header = Reader::new(&bytes[MAGIC.len()..]);
        let found = header.u32()?;
        if found != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found,
                supported: SNAPSHOT_VERSION,
            });
        }
        // The trailing checksum seals everything before it; verify before
        // trusting a single length field.
        let content_len = bytes
            .len()
            .checked_sub(8)
            .filter(|&l| l >= MAGIC.len() + 4)
            .ok_or(SnapshotError::Truncated)?;
        let declared = u64::from_le_bytes(bytes[content_len..].try_into().expect("8 bytes"));
        if snapshot::checksum(&bytes[..content_len]) != declared {
            return Err(SnapshotError::ChecksumMismatch);
        }

        // Decode every entry before touching the cache: all-or-nothing.
        let body = &bytes[MAGIC.len() + 4..content_len];
        let mut r = Reader::new(body);
        let count = r.len()?;
        // Preallocate only what the stream could actually hold: the
        // checksum keeps honest files honest, but a buggy (or hostile)
        // producer can seal any count it likes, and a declared count
        // must never translate into a huge allocation before the
        // entries that justify it are decoded. The smallest encodable
        // entry is far above 64 bytes.
        let mut decoded: Vec<(CacheKey, Vec<usize>, Arc<MapReport>)> =
            Vec::with_capacity(count.min(r.remaining() / 64));
        // Entries that serialized the same report bytes (a proved
        // solve's base entry + proved-tier entry share one `Arc` live)
        // get one shared `Arc` back, so a warm start costs the same
        // report heap the exporting process paid — not double.
        let mut shared_reports: HashMap<&[u8], Arc<MapReport>> = HashMap::new();
        for _ in 0..count {
            let key = CacheKey::read(&mut r)?;
            let canon_to_original = r.usizes()?;
            let span_start = r.position();
            let report = snapshot::read_report(&mut r)?;
            let report = match shared_reports.entry(&body[span_start..r.position()]) {
                std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
                std::collections::hash_map::Entry::Vacant(e) => {
                    Arc::clone(e.insert(Arc::new(report)))
                }
            };
            // The correspondence table must be a permutation of the
            // skeleton's labels — lookups index through it unchecked.
            if let Some(defect) = correspondence_defect(&key, &canon_to_original) {
                return Err(SnapshotError::Corrupted(defect));
            }
            decoded.push((key, canon_to_original, report));
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupted("trailing bytes after entries"));
        }
        // Our exporter never emits a key twice; a duplicate means a
        // corrupt or crafted file, and silently replacing the first
        // occurrence would also desynchronize the byte accounting.
        let mut keys = std::collections::HashSet::with_capacity(decoded.len());
        if !decoded.iter().all(|(key, _, _)| keys.insert(key)) {
            return Err(SnapshotError::Corrupted("duplicate entry key"));
        }
        drop(keys);

        let mut inner = self.inner.lock().expect("no panics under the lock");
        let to_insert: Vec<_> = decoded
            .into_iter()
            .filter(|(key, _, _)| !inner.map.contains_key(key))
            .collect();
        // Imported entries rank strictly *older* than every live entry:
        // a snapshot is history, and a runtime import must never evict
        // the hot working set in favor of entries that may never be
        // asked for again. Shifting the live ticks up by the import
        // count keeps the live order intact and frees 1..=count for the
        // imported entries (in the snapshot's own LRU order), so
        // capacity pressure drops stale snapshot entries first.
        let shift = to_insert.len() as u64;
        for entry in inner.map.values_mut() {
            entry.last_used = entry.last_used.saturating_add(shift);
        }
        inner.tick = inner.tick.saturating_add(shift);
        let admitted = to_insert.len();
        for (age, (key, canon_to_original, report)) in to_insert.into_iter().enumerate() {
            let bytes = approx_entry_bytes(&report, &canon_to_original);
            self.counters
                .approx_bytes
                .fetch_add(bytes, Ordering::Relaxed);
            inner.map.insert(
                key,
                Entry {
                    report,
                    canon_to_original,
                    approx_bytes: bytes,
                    last_used: age as u64 + 1,
                },
            );
        }
        evict_to_capacity(&mut inner, self.capacity, &self.counters);
        self.counters
            .entries
            .store(inner.map.len(), Ordering::Relaxed);
        Ok(admitted)
    }

    /// Cumulative counters, the current entry count, and the entries'
    /// approximate byte footprint.
    ///
    /// This read is a handful of relaxed atomic loads — it never takes
    /// the cache's entry lock, so a metrics endpoint or a load-test
    /// harness can poll it at arbitrary frequency without stalling (or
    /// being stalled by) concurrent lookups and inserts.
    pub fn stats(&self) -> SolveCacheStats {
        let c = &self.counters;
        SolveCacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            entries: c.entries.load(Ordering::Relaxed),
            approx_bytes: c.approx_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (counters are kept; they are cumulative).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("no panics under the lock");
        inner.map.clear();
        self.counters.entries.store(0, Ordering::Relaxed);
        self.counters.approx_bytes.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Evicts least-recently-used entries until at most `capacity` remain,
/// releasing their bytes and counting each eviction — the one eviction
/// policy, shared by live inserts and snapshot imports.
fn evict_to_capacity(inner: &mut Inner, capacity: usize, counters: &CacheCounters) {
    while inner.map.len() > capacity {
        let stalest = inner
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
            .expect("over-capacity map is non-empty");
        let evicted = inner.map.remove(&stalest).expect("key came from the map");
        counters
            .approx_bytes
            .fetch_sub(evicted.approx_bytes, Ordering::Relaxed);
        counters.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// Checks a decoded entry's correspondence table against its key's
/// skeleton: it must be a permutation of the canonical labels, because
/// lookups index through it unchecked. Shared by the snapshot import and
/// the journal replay admission.
fn correspondence_defect(key: &CacheKey, canon_to_original: &[usize]) -> Option<&'static str> {
    let n = key.skeleton.num_qubits();
    if canon_to_original.len() != n {
        return Some("correspondence length");
    }
    let mut seen = vec![false; n];
    for &q in canon_to_original {
        if q >= n || seen[q] {
            return Some("correspondence permutation");
        }
        seen[q] = true;
    }
    None
}

/// `layout` with its logical axis relabeled: the result places request
/// qubit `q` where `layout` places solved qubit `sigma[q]`.
fn remap_layout(layout: &Layout, sigma: &[usize]) -> Layout {
    let mut remapped = Layout::new(sigma.len(), layout.num_phys());
    for (q, &s) in sigma.iter().enumerate() {
        if let Some(p) = layout.phys_of(s) {
            remapped
                .assign(q, p)
                .expect("sigma is a permutation, so the image stays injective");
        }
    }
    remapped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, HeuristicEngine};
    use qxmap_arch::devices;
    use qxmap_circuit::{paper_example, Circuit};

    fn solve_and_insert(cache: &SolveCache, request: &MapRequest) -> MapReport {
        let engine = HeuristicEngine::naive();
        let report = engine.run(request).expect("mappable");
        cache.insert(&engine.cache_signature(), request, &report);
        report
    }

    #[test]
    fn identical_requests_hit() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        assert!(cache.lookup("naive", &request).is_none());
        let solved = solve_and_insert(&cache, &request);
        let hit = cache.lookup("naive", &request).expect("second lookup hits");
        assert!(hit.served_from_cache);
        assert_eq!(hit.winner, "cache/naive");
        assert_eq!(hit.cost, solved.cost);
        assert_eq!(hit.mapped, solved.mapped);
        assert_eq!(hit.runtime, solved.runtime, "original solve time kept");
        assert!(hit.elapsed < Duration::from_millis(10), "{:?}", hit.elapsed);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn relabeled_registers_hit_with_translated_layouts() {
        let cache = SolveCache::with_capacity(8);
        let circuit = paper_example();
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());
        solve_and_insert(&cache, &request);

        // The same circuit with renamed registers (q -> sigma[q]).
        let sigma = [2usize, 0, 3, 1];
        let renamed = circuit.map_qubits(circuit.num_qubits(), |q| sigma[q]);
        let renamed_request = MapRequest::new(renamed.clone(), cm.clone());
        let hit = cache
            .lookup("naive", &renamed_request)
            .expect("relabeled equivalents share the entry");
        assert!(hit.served_from_cache);
        // The served report must be valid *for the renamed circuit*.
        hit.verify(&renamed, &cm).expect("translated layouts");
        assert_eq!(hit.mapped.num_qubits(), cm.num_qubits());
    }

    #[test]
    fn different_device_and_options_miss() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        // Different coupling graph.
        let other = MapRequest::new(paper_example(), devices::ibm_qx2());
        assert!(cache.lookup("naive", &other).is_none());
        // Different engine signature.
        assert!(cache.lookup("sabre", &request).is_none());
        // Different seed.
        let reseeded = MapRequest::new(paper_example(), devices::ibm_qx4()).with_seed(7);
        assert!(cache.lookup("naive", &reseeded).is_none());
    }

    #[test]
    fn budget_classes_are_separate_but_proofs_serve_all() {
        let cache = SolveCache::with_capacity(8);
        let unbudgeted = MapRequest::new(paper_example(), devices::ibm_qx4());
        let budgeted = MapRequest::new(paper_example(), devices::ibm_qx4())
            .with_deadline(Duration::from_millis(50));

        // An unproved heuristic answer stays in its own budget class.
        solve_and_insert(&cache, &unbudgeted);
        assert!(cache.lookup("naive", &budgeted).is_none());

        // A proved answer is published to every budget class.
        let engine = crate::engine::ExactEngine::new();
        let proved = engine.run(&unbudgeted).expect("in regime");
        assert!(proved.proved_optimal);
        cache.insert(&engine.cache_signature(), &unbudgeted, &proved);
        let hit = cache
            .lookup("exact", &budgeted)
            .expect("a certificate serves any deadline class");
        assert!(hit.proved_optimal && hit.served_from_cache);
    }

    #[test]
    fn lru_eviction_is_counted_and_bounded() {
        let cache = SolveCache::with_capacity(2);
        let cm = devices::ibm_qx4();
        let requests: Vec<MapRequest> = (2..=5)
            .map(|n| {
                let mut c = Circuit::new(n);
                for q in 0..n - 1 {
                    c.cx(q, q + 1);
                }
                MapRequest::new(c, cm.clone())
            })
            .collect();
        for r in &requests {
            solve_and_insert(&cache, r);
        }
        let stats = cache.stats();
        assert!(stats.entries <= 2);
        assert!(stats.evictions >= 2, "{stats:?}");
        // The most recent insert survives; the oldest is gone.
        assert!(cache.lookup("naive", &requests[3]).is_some());
        assert!(cache.lookup("naive", &requests[0]).is_none());
    }

    #[test]
    fn errors_and_cache_served_reports_are_not_stored() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        let hit = cache.lookup("naive", &request).expect("hit");
        // Re-inserting the served clone is a no-op (no self-amplifying
        // cache/cache/... winners).
        cache.insert("naive", &request, &hit);
        let again = cache.lookup("naive", &request).expect("hit");
        assert_eq!(again.winner, "cache/naive");
    }

    #[test]
    fn stats_reads_complete_while_the_entry_lock_is_held() {
        // The soak harness and the daemon's metrics endpoint poll
        // stats() continuously; a read that needed the entry mutex would
        // stall behind (and add contention to) every in-flight insert.
        let cache = Arc::new(SolveCache::with_capacity(8));
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        let _guard = cache.inner.lock().expect("no panics under the lock");
        let (send, receive) = std::sync::mpsc::channel();
        let polled = Arc::clone(&cache);
        std::thread::spawn(move || {
            let _ = send.send(polled.stats());
        });
        let stats = receive
            .recv_timeout(Duration::from_secs(10))
            .expect("stats() blocked behind the held entry lock");
        assert_eq!(stats.entries, 1);
        assert!(stats.approx_bytes > 0);
    }

    #[test]
    fn capacity_override_parses_positive_integers_only() {
        assert_eq!(capacity_override(Some("8")), Some(8));
        assert_eq!(capacity_override(Some(" 12 ")), Some(12));
        assert_eq!(capacity_override(Some("0")), None, "zero capacity rejected");
        assert_eq!(capacity_override(Some("lots")), None);
        assert_eq!(capacity_override(None), None);
    }

    #[test]
    fn byte_accounting_follows_inserts_evictions_and_clear() {
        let cache = SolveCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.stats().approx_bytes, 0);
        let cm = devices::ibm_qx4();
        let requests: Vec<MapRequest> = (2..=4)
            .map(|n| {
                let mut c = Circuit::new(n);
                for q in 0..n - 1 {
                    c.cx(q, q + 1);
                }
                MapRequest::new(c, cm.clone())
            })
            .collect();
        solve_and_insert(&cache, &requests[0]);
        let one = cache.stats();
        assert!(one.approx_bytes > 0, "{one:?}");
        solve_and_insert(&cache, &requests[1]);
        let two = cache.stats();
        assert!(two.approx_bytes > one.approx_bytes);
        // Overflow evicts and releases the evicted entry's bytes: the
        // footprint stays bounded by the two largest entries ever held.
        solve_and_insert(&cache, &requests[2]);
        let three = cache.stats();
        assert!(three.evictions >= 1);
        assert!(three.entries <= 2);
        assert!(three.approx_bytes > 0);
        assert!(three.approx_bytes < one.approx_bytes + two.approx_bytes);
        cache.clear();
        assert_eq!(cache.stats().approx_bytes, 0);
    }

    #[test]
    fn calibration_overrides_are_cache_misses() {
        use qxmap_arch::DeviceModel;
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        assert!(cache.lookup("naive", &request).is_some());
        // The same device under a skewed calibration is a different
        // fingerprint — the cached answer may not serve it.
        let skewed = DeviceModel::new(devices::ibm_qx4()).with_swap_cost(3, 4, 70);
        let calibrated = MapRequest::for_model(paper_example(), skewed);
        assert!(cache.lookup("naive", &calibrated).is_none());
    }

    #[test]
    fn snapshot_round_trips_entries_and_serves_hits() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let solved = solve_and_insert(&cache, &request);

        let bytes = cache.export_snapshot();
        let warm = SolveCache::with_capacity(8);
        assert_eq!(warm.import_snapshot(&bytes), Ok(1));
        let hit = warm.lookup("naive", &request).expect("warm-started entry");
        assert!(hit.served_from_cache);
        assert_eq!(hit.cost, solved.cost);
        assert_eq!(hit.mapped, solved.mapped);
        assert_eq!(hit.initial_layout, solved.initial_layout);
        assert_eq!(hit.runtime, solved.runtime);
        // Byte accounting matches a live insert's.
        assert_eq!(warm.stats().approx_bytes, cache.stats().approx_bytes);
        // Importing on top of live entries keeps the live ones.
        assert_eq!(cache.import_snapshot(&bytes), Ok(0));
    }

    #[test]
    fn snapshot_preserves_the_proved_tier() {
        let cache = SolveCache::with_capacity(8);
        let unbudgeted = MapRequest::new(paper_example(), devices::ibm_qx4());
        let engine = crate::engine::ExactEngine::new();
        let proved = engine.run(&unbudgeted).expect("in regime");
        assert!(proved.proved_optimal);
        cache.insert(&engine.cache_signature(), &unbudgeted, &proved);
        assert_eq!(cache.stats().entries, 2, "base entry + proved tier");

        let warm = SolveCache::with_capacity(8);
        assert_eq!(warm.import_snapshot(&cache.export_snapshot()), Ok(2));
        // The budget-erased tier still serves every budget class.
        let budgeted = MapRequest::new(paper_example(), devices::ibm_qx4())
            .with_deadline(Duration::from_millis(50));
        let hit = warm
            .lookup("exact", &budgeted)
            .expect("certificates survive the round trip");
        assert!(hit.proved_optimal && hit.served_from_cache);
    }

    #[test]
    fn import_restores_report_sharing_across_tier_entries() {
        // Live, a proved solve's base entry and proved-tier entry share
        // one Arc'd report; the round trip must restore that sharing,
        // not double the report heap on every warm start.
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let engine = crate::engine::ExactEngine::new();
        let proved = engine.run(&request).expect("in regime");
        cache.insert(&engine.cache_signature(), &request, &proved);

        let warm = SolveCache::with_capacity(8);
        assert_eq!(warm.import_snapshot(&cache.export_snapshot()), Ok(2));
        let inner = warm.inner.lock().expect("no panics under the lock");
        let reports: Vec<&Arc<MapReport>> = inner.map.values().map(|e| &e.report).collect();
        assert_eq!(reports.len(), 2);
        assert!(
            Arc::ptr_eq(reports[0], reports[1]),
            "tier entries lost their shared report on import"
        );
    }

    #[test]
    fn snapshot_import_respects_capacity_keeping_the_freshest() {
        let cache = SolveCache::with_capacity(8);
        let cm = devices::ibm_qx4();
        let requests: Vec<MapRequest> = (2..=5)
            .map(|n| {
                let mut c = Circuit::new(n);
                for q in 0..n - 1 {
                    c.cx(q, q + 1);
                }
                MapRequest::new(c, cm.clone())
            })
            .collect();
        for r in &requests {
            solve_and_insert(&cache, r);
        }
        let bytes = cache.export_snapshot();
        let tiny = SolveCache::with_capacity(2);
        assert_eq!(tiny.import_snapshot(&bytes), Ok(4));
        let stats = tiny.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
        // The most recently used entries survive, like live LRU would.
        assert!(tiny.lookup("naive", &requests[3]).is_some());
        assert!(tiny.lookup("naive", &requests[2]).is_some());
        assert!(tiny.lookup("naive", &requests[0]).is_none());
    }

    #[test]
    fn snapshot_rejects_corruption_version_bumps_and_truncation() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        let bytes = cache.export_snapshot();

        let fresh = || SolveCache::with_capacity(8);
        // Not a snapshot at all.
        assert_eq!(
            fresh().import_snapshot(b"definitely not a snapshot"),
            Err(SnapshotError::BadMagic)
        );
        // A version bump is a clean rejection, not a misread.
        let mut bumped = bytes.clone();
        bumped[MAGIC.len()] = bumped[MAGIC.len()].wrapping_add(1);
        assert_eq!(
            fresh().import_snapshot(&bumped),
            Err(SnapshotError::VersionMismatch {
                found: SNAPSHOT_VERSION + 1,
                supported: SNAPSHOT_VERSION,
            })
        );
        // Truncations anywhere reject the whole file with no entries
        // admitted.
        for cut in [3, MAGIC.len() + 2, bytes.len() / 2, bytes.len() - 1] {
            let target = fresh();
            assert!(target.import_snapshot(&bytes[..cut]).is_err(), "cut {cut}");
            assert_eq!(target.stats().entries, 0, "cut {cut}");
        }
        // A flipped content byte fails the checksum.
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        assert_eq!(
            fresh().import_snapshot(&corrupted),
            Err(SnapshotError::ChecksumMismatch)
        );
        // The pristine bytes still import after all those rejections.
        assert_eq!(fresh().import_snapshot(&bytes), Ok(1));
    }

    #[test]
    fn runtime_import_never_evicts_the_live_working_set() {
        let cm = devices::ibm_qx4();
        let chain_request = |n: usize| {
            let mut c = Circuit::new(n);
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            MapRequest::new(c, cm.clone())
        };
        // A donor cache with two entries (chains 3 and 4; 4 is fresher).
        let donor = SolveCache::with_capacity(8);
        solve_and_insert(&donor, &chain_request(3));
        solve_and_insert(&donor, &chain_request(4));
        let bytes = donor.export_snapshot();

        // A live cache at capacity 2 holding one *hot* entry. Importing
        // two snapshot entries overflows by one — the eviction must land
        // on the snapshot's stalest entry, never on the live one.
        let live = SolveCache::with_capacity(2);
        let hot = chain_request(2);
        solve_and_insert(&live, &hot);
        assert_eq!(live.import_snapshot(&bytes), Ok(2));
        let stats = live.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        assert!(
            live.lookup("naive", &hot).is_some(),
            "a runtime import evicted the live working set"
        );
        assert!(live.lookup("naive", &chain_request(4)).is_some());
        assert!(live.lookup("naive", &chain_request(3)).is_none());
    }

    #[test]
    fn snapshot_header_peek_and_hostile_counts() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        let bytes = cache.export_snapshot();
        assert_eq!(crate::snapshot::snapshot_entry_count(&bytes), Some(1));
        assert_eq!(crate::snapshot::snapshot_entry_count(b"junk"), None);

        // A checksum-valid stream repeating one key is corrupt, not a
        // replacement: silently keeping the second copy would also leak
        // the first copy's byte accounting.
        {
            let body_start = MAGIC.len() + 4 + 8;
            let entry = &bytes[body_start..bytes.len() - 8];
            let mut w = crate::snapshot::Writer::new();
            w.raw(MAGIC);
            w.u32(SNAPSHOT_VERSION);
            w.u64(2);
            w.raw(entry);
            w.raw(entry);
            let sum = crate::snapshot::checksum(w.bytes());
            w.u64(sum);
            let doubled = w.into_bytes();
            let target = SolveCache::with_capacity(8);
            assert_eq!(
                target.import_snapshot(&doubled),
                Err(SnapshotError::Corrupted("duplicate entry key"))
            );
            assert_eq!(target.stats().entries, 0);
        }

        // Sealed-but-lying headers: a checksum-valid stream whose
        // declared count exceeds what the body can hold must reject
        // cleanly — whether the count outruns the byte budget entirely
        // (the length guard) or merely the decodable entries (the
        // capped preallocation keeps the count from ever becoming a
        // giant allocation).
        for declared in [1_000_000u64, 1024] {
            let mut w = crate::snapshot::Writer::new();
            w.raw(MAGIC);
            w.u32(SNAPSHOT_VERSION);
            w.u64(declared);
            w.raw(&[0u8; 1024]);
            let sum = crate::snapshot::checksum(w.bytes());
            w.u64(sum);
            let hostile = w.into_bytes();
            let target = SolveCache::with_capacity(8);
            assert!(target.import_snapshot(&hostile).is_err(), "{declared}");
            assert_eq!(target.stats().entries, 0);
        }
    }

    #[test]
    fn skeleton_probe_matches_request_lookup() {
        let cache = SolveCache::with_capacity(8);
        let circuit = paper_example();
        let cm = devices::ibm_qx4();
        let request = MapRequest::new(circuit.clone(), cm.clone());
        let probe = CacheProbe::new(CircuitSkeleton::of(&circuit), &cm);
        // A probe miss counts as a miss, like a request lookup would.
        assert!(cache.probe("naive", &probe).is_none());
        assert_eq!(cache.stats().misses, 1);
        solve_and_insert(&cache, &request);
        let via_probe = cache.probe("naive", &probe).expect("probe hit");
        let via_lookup = cache.lookup("naive", &request).expect("lookup hit");
        assert!(via_probe.served_from_cache);
        assert_eq!(via_probe.winner, via_lookup.winner);
        assert_eq!(via_probe.cost, via_lookup.cost);
        assert_eq!(via_probe.mapped, via_lookup.mapped);
        assert_eq!(via_probe.initial_layout, via_lookup.initial_layout);
        assert_eq!(via_probe.final_layout, via_lookup.final_layout);
    }

    #[test]
    fn probe_options_pin_the_same_key_fields_as_requests() {
        let cache = SolveCache::with_capacity(8);
        let circuit = paper_example();
        let cm = devices::ibm_qx4();
        let skeleton = CircuitSkeleton::of(&circuit);
        let budgeted = MapRequest::new(circuit.clone(), cm.clone())
            .with_seed(7)
            .with_deadline(Duration::from_millis(50));
        solve_and_insert(&cache, &budgeted);
        // Matching options hit…
        let hit = CacheProbe::new(skeleton.clone(), &cm)
            .with_seed(7)
            .with_deadline(Duration::from_millis(50));
        assert!(cache.probe("naive", &hit).is_some());
        // …and every mismatched knob misses, exactly like a request.
        assert!(cache
            .probe(
                "naive",
                &CacheProbe::new(skeleton.clone(), &cm).with_seed(7)
            )
            .is_none());
        let wrong_seed =
            CacheProbe::new(skeleton.clone(), &cm).with_deadline(Duration::from_millis(50));
        assert!(cache.probe("naive", &wrong_seed).is_none());
        let wrong_device = CacheProbe::new(skeleton, &devices::ibm_qx2())
            .with_seed(7)
            .with_deadline(Duration::from_millis(50));
        assert!(cache.probe("naive", &wrong_device).is_none());
    }

    #[test]
    fn relabeled_skeleton_probe_translates_layouts() {
        let cache = SolveCache::with_capacity(8);
        let circuit = paper_example();
        let cm = devices::ibm_qx4();
        solve_and_insert(&cache, &MapRequest::new(circuit.clone(), cm.clone()));
        // Probing with a renamed-register equivalent's skeleton serves
        // the entry with layouts translated to *that* naming.
        let sigma = [2usize, 0, 3, 1];
        let renamed = circuit.map_qubits(circuit.num_qubits(), |q| sigma[q]);
        let probe = CacheProbe::new(CircuitSkeleton::of(&renamed), &cm);
        let hit = cache.probe("naive", &probe).expect("relabeled probe hit");
        hit.verify(&renamed, &cm).expect("translated layouts");
    }

    #[test]
    fn probe_for_model_tracks_calibration_fingerprints() {
        use qxmap_arch::DeviceModel;
        let cache = SolveCache::with_capacity(8);
        let circuit = paper_example();
        let skewed = DeviceModel::new(devices::ibm_qx4()).with_swap_cost(3, 4, 70);
        let request = MapRequest::for_model(circuit.clone(), skewed.clone());
        solve_and_insert(&cache, &request);
        let skeleton = CircuitSkeleton::of(&circuit);
        let probe = CacheProbe::for_model(skeleton.clone(), &skewed);
        assert!(cache.probe("naive", &probe).is_some());
        // The uniform-model probe is a different device identity.
        assert!(cache
            .probe("naive", &CacheProbe::new(skeleton, &devices::ibm_qx4()))
            .is_none());
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let cache = SolveCache::with_capacity(8);
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        solve_and_insert(&cache, &request);
        assert!(cache.lookup("naive", &request).is_some());
        cache.clear();
        assert!(cache.lookup("naive", &request).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert!(stats.hits >= 1 && stats.misses >= 1);
    }
}
