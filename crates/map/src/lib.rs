//! # qxmap-map — the unified mapping surface
//!
//! The exact SAT-based method and the heuristic baselines answer the same
//! question — *map this circuit onto this coupling graph with as little
//! SWAP/H insertion as possible* — but historically exposed incompatible
//! APIs (`ExactMapper::map(&Circuit)` with the device bound at
//! construction versus `Mapper::map(&Circuit, &CouplingMap)`). This crate
//! redesigns the public surface around three types:
//!
//! * [`MapRequest`] — a builder bundling the circuit, device, cost model,
//!   [`Guarantee`] level, permutation strategy, conflict budget and seed;
//! * [`MapReport`] — one uniform answer: the hardware circuit, both
//!   layouts, a [`CostBreakdown`], a `proved_optimal` certificate, the
//!   runtime and the engine that produced it;
//! * [`MapperError`] — one error type, with `From` conversions from both
//!   legacy error enums.
//!
//! Every request answers under one [`qxmap_arch::DeviceModel`] — the
//! workspace's single authority on per-edge costs, precomputed distances
//! and the device fingerprint ([`MapRequest::for_model`] /
//! [`MapRequest::with_device_model`] attach calibration-aware models; the
//! default is the paper's uniform 7/4 accounting). Every mapping method
//! implements the [`Engine`] trait: the exact solver ([`ExactEngine`],
//! whose per-subset subinstances solve on a parallel worker pool and read
//! their SAT objective weights from the model), all four baselines
//! ([`HeuristicEngine`]), and the [`Portfolio`] engine that *races* the
//! heuristics against the exact search on threads — coupled through a
//! shared best-cost bound and cooperative cancellation — transparently
//! falls back to heuristics on devices beyond the exact method's regime,
//! and schedules the pool cost-model-aware: cheap model statistics
//! (all-to-all-ness, directedness) prove some baselines dominated, and
//! those never start. Requests carry both a
//! conflict budget and a wall-clock [`MapRequest::with_deadline`]; when a
//! budget fires, the race answers with the best verified result in hand
//! and [`MapReport::winner`] names the engine that produced it.
//! [`map_many`] batches requests across std threads, deduplicating
//! identical subcircuits against the process-wide [`SolveCache`] — a
//! bounded LRU of verified reports keyed by the circuit's canonical
//! (qubit-relabel-invariant) skeleton, the device's coupling graph, the
//! request options and the budget class. Repeated requests, including
//! relabeled-register equivalents, are answered in microseconds with
//! [`MapReport::served_from_cache`] set ([`Engine::run_cached`] is the
//! single-request entry). Below it, repeated (device, subset) pairs are
//! served from the process-wide `SwapTable` cache.
//!
//! ## Quickstart
//!
//! ```
//! use qxmap_arch::devices;
//! use qxmap_circuit::paper_example;
//! use qxmap_map::{Engine, MapRequest, Portfolio};
//!
//! let request = MapRequest::new(paper_example(), devices::ibm_qx4());
//! let report = Portfolio::new().run(&request)?;
//! assert_eq!(report.cost.objective, 4); // Example 7 of the paper
//! assert!(report.proved_optimal);
//! println!("{} via {}", report.cost, report.engine);
//! # Ok::<(), qxmap_map::MapperError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod batch;
mod cache;
mod engine;
mod error;
mod journal;
mod portfolio;
mod report;
mod request;
mod snapshot;

pub use batch::{map_many, map_many_with};
pub use cache::{
    CacheProbe, SolveCache, SolveCacheStats, DEFAULT_SOLVE_CACHE_CAPACITY, SOLVE_CACHE_CAPACITY_ENV,
};
pub use engine::{Baseline, Engine, ExactEngine, HeuristicEngine};
pub use error::MapperError;
pub use journal::{
    replay_journal, replay_records, Journal, JournalReplay, JournalStats, JOURNAL_MAGIC,
    JOURNAL_VERSION,
};
pub use portfolio::Portfolio;
pub use report::{CostBreakdown, MapReport, WindowCertificate};
pub use request::{Guarantee, MapRequest};
pub use snapshot::{snapshot_entry_count, SnapshotError, SNAPSHOT_VERSION};

/// Maps one request with the default [`Portfolio`] engine, answered from
/// the process-wide [`SolveCache`] when the same request (or a
/// relabeled-register equivalent) was solved before — see
/// [`Engine::run_cached`].
///
/// ```
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_map::{map_one, MapRequest};
///
/// let request = MapRequest::new(paper_example(), devices::ibm_qx4());
/// let first = map_one(&request)?;
/// let second = map_one(&request)?;
/// assert_eq!(first.cost, second.cost);
/// assert!(second.served_from_cache);
/// assert!(second.winner.starts_with("cache/"));
/// # Ok::<(), qxmap_map::MapperError>(())
/// ```
///
/// # Errors
///
/// Propagates the engine's [`MapperError`].
pub fn map_one(request: &MapRequest) -> Result<MapReport, MapperError> {
    Portfolio::new().run_cached(request)
}

/// Probes the process-wide [`SolveCache`] for an already-solved answer
/// under the default [`Portfolio`] engine's signature — the
/// skeleton-first warm path's entry point. The probe carries only the
/// circuit's canonical [`qxmap_circuit::CircuitSkeleton`] (computable in
/// the same pass that parses the QASM text or QXBC bytes), so a hit is
/// served without ever materializing a [`qxmap_circuit::Circuit`]; a
/// miss returns `None` and the caller falls through to [`map_one`],
/// which probes exactly the same key before solving. See
/// [`CacheProbe`] for an end-to-end example.
pub fn probe_one(probe: &CacheProbe) -> Option<MapReport> {
    SolveCache::shared().probe(&Portfolio::new().cache_signature(), probe)
}
