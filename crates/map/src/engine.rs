//! The [`Engine`] abstraction and the adapters over the legacy mappers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use qxmap_core::{EncodingStats, ExactMapper, MapperConfig, SolveControl, MAX_EXACT_QUBITS};
use qxmap_heuristic::{
    AStarMapper, HeuristicResult, Mapper, NaiveMapper, SabreMapper, StochasticSwapMapper, StopCheck,
};
use qxmap_sat::MinimizeOptions;

use crate::cache::SolveCache;
use crate::error::MapperError;
use crate::report::MapReport;
use crate::request::{Guarantee, MapRequest};

/// Anything that can answer a [`MapRequest`] with a [`MapReport`].
///
/// Engines are stateless with respect to requests and shareable across
/// threads, which is what lets [`crate::map_many`] race one engine over a
/// whole batch.
pub trait Engine: Send + Sync {
    /// Short engine name, echoed in [`MapReport::engine`].
    fn name(&self) -> &str;

    /// Answers one request.
    ///
    /// # Errors
    ///
    /// Returns a [`MapperError`] when the request cannot be satisfied.
    fn run(&self, request: &MapRequest) -> Result<MapReport, MapperError>;

    /// The engine's identity in [`SolveCache`] keys. Defaults to
    /// [`Engine::name`]; engines whose configuration changes their
    /// answers (trial counts, pool composition) must extend it so
    /// distinct configurations never share cache entries.
    fn cache_signature(&self) -> String {
        self.name().to_string()
    }

    /// Whether this engine's answers are pure functions of the request
    /// and may be cached. Engines coupled to external state — like an
    /// [`ExactEngine`] with an attached racing [`SolveControl`], whose
    /// supervisor can cancel or bound a run mid-flight — must return
    /// `false`, or a degraded answer would be served to callers with no
    /// such supervisor. [`Engine::run_cached`] falls back to a plain
    /// [`Engine::run`] when this is `false`.
    fn cacheable(&self) -> bool {
        true
    }

    /// [`Engine::run`] through the process-wide [`SolveCache`]: a request
    /// whose (canonical circuit skeleton, device, options, budget class)
    /// was already answered by this engine returns the cached, verified
    /// report — flagged [`MapReport::served_from_cache`], with
    /// [`MapReport::elapsed`] reporting the lookup time — without
    /// touching a solver. Relabeled-register equivalents hit the same
    /// entry (their layouts are translated through the register
    /// correspondence). Misses run the engine and populate the cache.
    ///
    /// Engines whose answers are not pure functions of the request
    /// ([`Engine::cacheable`] is `false`, e.g. an [`ExactEngine`] with an
    /// attached [`SolveControl`]) bypass the cache entirely.
    ///
    /// # Errors
    ///
    /// Returns a [`MapperError`] when the request cannot be satisfied;
    /// errors are never cached.
    fn run_cached(&self, request: &MapRequest) -> Result<MapReport, MapperError> {
        if !self.cacheable() {
            return self.run(request);
        }
        let cache = SolveCache::shared();
        let signature = self.cache_signature();
        if let Some(mut hit) = cache.lookup(&signature, request) {
            // A traced warm hit reports its own (near-zero) lookup, not
            // the original solve's timeline — which the cache never
            // stores.
            let trace = request.trace();
            trace.event("cache", "hit", 1);
            hit.trace = trace.finish();
            return Ok(hit);
        }
        request.trace().event("cache", "miss", 1);
        let report = self.run(request)?;
        cache.insert(&signature, request, &report);
        Ok(report)
    }
}

/// The paper's exact SAT-based method behind the unified surface.
///
/// Honors the request's strategy, subset flag, cost model, conflict
/// budget, deadline and upper bound; per-subset subinstances solve on a
/// parallel worker pool sharing those budgets. With
/// [`Guarantee::Optimal`] the run fails unless the result carries a
/// minimality proof.
#[derive(Debug, Clone, Default)]
pub struct ExactEngine {
    control: Option<SolveControl>,
}

impl ExactEngine {
    /// Creates the engine.
    pub fn new() -> ExactEngine {
        ExactEngine::default()
    }

    /// Attaches a shared [`SolveControl`]: a racing supervisor (like
    /// [`crate::Portfolio`]) cancels the run and feeds it achievable-cost
    /// bounds through this handle. One handle is good for one request.
    pub fn with_control(mut self, control: SolveControl) -> ExactEngine {
        self.control = Some(control);
        self
    }

    fn config_for(&self, request: &MapRequest) -> MapperConfig {
        let n = request.circuit().num_qubits();
        let m = request.device().num_qubits();
        // No `.with_cost_model(...)`: the mapper is built via
        // `ExactMapper::for_model`, where the request's device model is
        // the cost authority and the config's cost model is ignored.
        MapperConfig::minimal()
            .with_strategy(request.strategy().clone())
            .with_subsets(request.use_subsets() && n < m)
            .with_deadline(request.deadline())
            .with_control(self.control.clone().unwrap_or_default())
            // Core's per-subset encode/minimize spans nest under this
            // engine's own span ("exact/subset0/encode", or
            // "race/exact/…" inside a portfolio race).
            .with_trace(request.trace().scoped("exact"))
            .with_minimize(
                MinimizeOptions::default()
                    .with_conflict_budget(request.conflict_budget())
                    // The bound is priced under the same device model as
                    // the objective weights the mapper will read.
                    .with_initial_upper_bound(request.upper_bound()),
            )
    }

    fn mapper_for(&self, request: &MapRequest) -> ExactMapper {
        // The request's device model is the single cost authority: the
        // exact objective reads every weight from it.
        ExactMapper::for_model(request.device_model().clone(), self.config_for(request))
    }

    /// Builds (without solving) the SAT instance for the request and
    /// reports its size — the facade's window into the paper's
    /// search-space discussion (Examples 5 and 8).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExactEngine::run`], except that infeasibility
    /// cannot be detected without solving.
    pub fn encoding_stats(&self, request: &MapRequest) -> Result<EncodingStats, MapperError> {
        Ok(self.mapper_for(request).encoding_stats(request.circuit())?)
    }
}

impl Engine for ExactEngine {
    fn name(&self) -> &str {
        "exact"
    }

    fn cacheable(&self) -> bool {
        // A racing supervisor can cancel or bound this engine mid-run
        // through the attached control: such answers are not pure
        // functions of the request and must never be cached.
        self.control.is_none()
    }

    fn run(&self, request: &MapRequest) -> Result<MapReport, MapperError> {
        let trace = request.trace();
        let mut span = trace.span(self.name());
        let result = self.mapper_for(request).map(request.circuit())?;
        if request.guarantee() == Guarantee::Optimal && !result.proved_optimal {
            return Err(MapperError::proof_budget_exhausted());
        }
        span.counter("iterations", u64::from(result.iterations));
        span.counter("change_points", result.num_change_points as u64);
        span.end();
        let mut report = MapReport::from_exact(result, self.name());
        report.trace = trace.finish();
        Ok(report)
    }
}

/// Which heuristic baseline a [`HeuristicEngine`] wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Per-gate shortest-path chains, no lookahead.
    Naive,
    /// Per-layer A* search (reference \[22\] of the paper).
    AStar,
    /// SABRE-style lookahead (reference \[13\]).
    Sabre,
    /// Qiskit-0.4-style stochastic swap (reference \[12\]); best of
    /// `trials` seeded runs starting at the request's seed.
    Stochastic {
        /// Number of seeded runs to take the minimum over (Table 1 used
        /// 5).
        trials: u64,
    },
}

/// Any of the four heuristic baselines behind the unified surface.
///
/// Heuristics carry no minimality proof: `proved_optimal` is only set
/// when the modelled objective is zero (costs are non-negative, so
/// nothing beats 0 — merely inserting nothing proves nothing under a
/// calibrated model). With [`Guarantee::Optimal`] requests, unproved
/// runs fail.
///
/// The stochastic baseline is deadline-aware: its seeded trials run on a
/// scoped worker pool, the pool polls [`MapRequest::with_deadline`] (and,
/// under a racing [`crate::Portfolio`], the shared cancel flag) between
/// trials, and each trial winds itself down per layer once the budget
/// fires. At least one trial always completes, so a deadline degrades
/// quality — never validity — and is honored within one trial's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeuristicEngine {
    baseline: Baseline,
}

impl HeuristicEngine {
    /// The naive shortest-path floor baseline.
    pub fn naive() -> HeuristicEngine {
        HeuristicEngine {
            baseline: Baseline::Naive,
        }
    }

    /// The A*-search baseline.
    pub fn astar() -> HeuristicEngine {
        HeuristicEngine {
            baseline: Baseline::AStar,
        }
    }

    /// The SABRE-style baseline.
    pub fn sabre() -> HeuristicEngine {
        HeuristicEngine {
            baseline: Baseline::Sabre,
        }
    }

    /// The stochastic baseline, taking the best of `trials` seeded runs.
    pub fn stochastic(trials: u64) -> HeuristicEngine {
        HeuristicEngine {
            baseline: Baseline::Stochastic {
                trials: trials.max(1),
            },
        }
    }

    /// The wrapped baseline.
    pub fn baseline(&self) -> Baseline {
        self.baseline
    }
}

impl HeuristicEngine {
    /// The shared implementation behind [`Engine::run`]: `control`, when
    /// present, is the racing supervisor's handle whose cancel flag stops
    /// stochastic trials early (the [`crate::Portfolio`] passes its own).
    pub(crate) fn run_inner(
        &self,
        request: &MapRequest,
        control: Option<&SolveControl>,
    ) -> Result<MapReport, MapperError> {
        let circuit = request.circuit();
        let model = request.device_model();
        let cancel = control.map(SolveControl::cancel_handle);
        let trace = request.trace();
        let mut span = trace.span(self.name());
        let result = match self.baseline {
            Baseline::Naive => NaiveMapper::new().map_model(circuit, model)?,
            Baseline::AStar => {
                let mut mapper = AStarMapper::new().with_deadline(request.deadline());
                if let Some(cancel) = cancel {
                    mapper = mapper.with_stop(cancel);
                }
                mapper.map_model(circuit, model)?
            }
            Baseline::Sabre => {
                // Lookahead sized to the device's statistics (diameter,
                // cost skew) — a pure function of the model already in
                // the cache key, so cacheability is unaffected.
                let mut mapper = SabreMapper::new()
                    .with_scaled_lookahead(model)
                    .with_deadline(request.deadline());
                if let Some(cancel) = cancel {
                    mapper = mapper.with_stop(cancel);
                }
                mapper.map_model(circuit, model)?
            }
            Baseline::Stochastic { trials } => run_stochastic_pool(request, trials, control)?,
        };
        span.counter("model_cost", result.model_cost);
        if let Some(reason) = result.wound_down {
            // The race timeline's "who degraded and why": deadline fired
            // or a supervisor cancelled this racer mid-run.
            span.counter(reason, 1);
        }
        span.end();
        let mut report = MapReport::from_heuristic(result, self.name());
        report.trace = trace.finish();
        if let Some(bound) = request.upper_bound() {
            // The declared bound is a hard ceiling for every engine.
            if report.cost.objective >= bound {
                return Err(MapperError::BoundUnmet { bound });
            }
        }
        if request.guarantee() == Guarantee::Optimal && !report.proved_optimal {
            return Err(MapperError::OptimalityUnavailable {
                reason: format!("the {} baseline cannot prove minimality", self.name()),
            });
        }
        Ok(report)
    }
}

impl Engine for HeuristicEngine {
    fn name(&self) -> &str {
        match self.baseline {
            Baseline::Naive => "naive",
            Baseline::AStar => "astar",
            Baseline::Sabre => "sabre",
            Baseline::Stochastic { .. } => "stochastic",
        }
    }

    fn cache_signature(&self) -> String {
        match self.baseline {
            Baseline::Stochastic { trials } => format!("stochastic:{trials}"),
            _ => self.name().to_string(),
        }
    }

    fn run(&self, request: &MapRequest) -> Result<MapReport, MapperError> {
        self.run_inner(request, None)
    }
}

/// The stochastic baseline's seeded trials, distributed over a scoped
/// worker pool. Trial `t` uses seed `request.seed() + t`, exactly like
/// the sequential loop did; results land in per-trial slots so the
/// winner selection stays deterministic whenever every trial completes.
///
/// Deadline/cancellation observance: trial 0 always runs (a valid answer
/// must exist), later trials are skipped once the request's deadline or
/// the supervisor's cancel flag fires, and every trial additionally winds
/// itself down per layer through the mapper's own deadline/stop hooks.
fn run_stochastic_pool(
    request: &MapRequest,
    trials: u64,
    control: Option<&SolveControl>,
) -> Result<HeuristicResult, MapperError> {
    let circuit = request.circuit();
    let model = request.device_model();
    let cutoff = request.deadline().map(|d| Instant::now() + d);
    let cancel = control.map(SolveControl::cancel_handle);
    // The planners' shared wind-down predicate, polled between trials.
    let check = StopCheck::arm(request.deadline(), cancel.clone());
    let stopped = || check.stopped();

    let trials_usize = usize::try_from(trials).unwrap_or(usize::MAX);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trials_usize)
        .max(1);
    let next = AtomicUsize::new(0);
    // Completed trials only (skipped ones allocate nothing, so absurd
    // trial counts cost time, never memory), tagged with their index to
    // keep winner selection deterministic.
    let completed: Mutex<
        Vec<(
            usize,
            Result<HeuristicResult, qxmap_heuristic::HeuristicError>,
        )>,
    > = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= trials_usize || (t > 0 && stopped()) {
                    break;
                }
                let mut mapper =
                    StochasticSwapMapper::with_seed(request.seed().wrapping_add(t as u64))
                        .with_deadline(cutoff.map(|c| c.saturating_duration_since(Instant::now())));
                if let Some(cancel) = &cancel {
                    mapper = mapper.with_stop(cancel.clone());
                }
                let result = mapper.map_model(circuit, model);
                completed
                    .lock()
                    .expect("no panics under the lock")
                    .push((t, result));
            });
        }
    });

    // Winner: minimal objective under the request's *device model* —
    // each trial already priced its own insertions per edge — with
    // added-gate count and then the lowest trial index as tie-breaks
    // (matching the sequential loop's first-wins order).
    let mut completed = completed.into_inner().expect("workers have exited");
    completed.sort_by_key(|(t, _)| *t);
    let mut best: Option<HeuristicResult> = None;
    for (_, result) in completed {
        // Structural failures (capacity, routability) are identical
        // across seeds: any one of them describes the instance.
        let result = result?;
        if best
            .as_ref()
            .is_none_or(|b| (result.model_cost, result.added_gates) < (b.model_cost, b.added_gates))
        {
            best = Some(result);
        }
    }
    Ok(best.expect("trial 0 always runs"))
}

/// Whether the exact method is in regime for this request's device.
pub(crate) fn exact_in_regime(request: &MapRequest) -> bool {
    let n = request.circuit().num_qubits();
    let m = request.device().num_qubits();
    // Without subsets the full device must be enumerable; with subsets the
    // subinstances have n qubits, but enumerating connected subsets of a
    // huge device is itself out of regime, so stay conservative.
    m <= MAX_EXACT_QUBITS && n <= m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;

    #[test]
    fn exact_engine_reproduces_example7() {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        let report = ExactEngine::new().run(&request).unwrap();
        assert_eq!(report.cost.objective, 4);
        assert_eq!(report.cost.reversals, 1);
        assert!(report.proved_optimal);
        assert_eq!(report.engine, "exact");
        assert_eq!(report.mapped_cost(), 12);
        report
            .verify(&paper_example(), &devices::ibm_qx4())
            .unwrap();
    }

    #[test]
    fn exact_engine_respects_upper_bound_certificates() {
        // Asking for strictly better than the known optimum of 4 is
        // infeasible — which is exactly the certificate the portfolio
        // uses.
        let request =
            MapRequest::new(paper_example(), devices::ibm_qx4()).with_upper_bound(Some(4));
        assert_eq!(
            ExactEngine::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
        // A looser bound still finds the optimum, proved.
        let request =
            MapRequest::new(paper_example(), devices::ibm_qx4()).with_upper_bound(Some(40));
        let report = ExactEngine::new().run(&request).unwrap();
        assert_eq!(report.cost.objective, 4);
        assert!(report.proved_optimal);
    }

    #[test]
    fn heuristic_engines_never_beat_the_minimum() {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4());
        for engine in [
            HeuristicEngine::naive(),
            HeuristicEngine::astar(),
            HeuristicEngine::sabre(),
            HeuristicEngine::stochastic(5),
        ] {
            let report = engine.run(&request).unwrap();
            assert!(
                report.cost.added_gates >= 4,
                "{} beat the proven minimum",
                engine.name()
            );
            report
                .verify(&paper_example(), &devices::ibm_qx4())
                .unwrap();
        }
    }

    #[test]
    fn heuristic_engines_honor_the_upper_bound() {
        // The optimum is 4, so no heuristic can come in below a bound of 3.
        let request =
            MapRequest::new(paper_example(), devices::ibm_qx4()).with_upper_bound(Some(3));
        for engine in [
            HeuristicEngine::naive(),
            HeuristicEngine::sabre(),
            HeuristicEngine::stochastic(2),
        ] {
            assert_eq!(
                engine.run(&request).unwrap_err(),
                MapperError::BoundUnmet { bound: 3 },
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn trivial_circuit_cannot_beat_a_zero_bound() {
        // A circuit with no CNOTs maps at cost 0 — which is not strictly
        // below 0.
        let mut c = qxmap_circuit::Circuit::new(2);
        c.h(0);
        let request = MapRequest::new(c.clone(), devices::ibm_qx4()).with_upper_bound(Some(0));
        assert_eq!(
            ExactEngine::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
        // And the portfolio propagates the proof instead of panicking.
        let request = MapRequest::new(c, devices::ibm_qx4()).with_upper_bound(Some(0));
        assert_eq!(
            crate::Portfolio::new().run(&request).unwrap_err(),
            MapperError::Infeasible
        );
    }

    #[test]
    fn optimal_guarantee_rejects_unprovable_runs() {
        let request =
            MapRequest::new(paper_example(), devices::ibm_qx4()).with_guarantee(Guarantee::Optimal);
        assert!(matches!(
            HeuristicEngine::sabre().run(&request),
            Err(MapperError::OptimalityUnavailable { .. })
        ));
    }

    #[test]
    fn regime_check_tracks_device_size() {
        let small = MapRequest::new(three_qubit_circuit(), devices::ibm_qx4());
        assert!(exact_in_regime(&small));
        let big = MapRequest::new(three_qubit_circuit(), devices::ibm_qx5());
        assert!(!exact_in_regime(&big));
    }

    fn three_qubit_circuit() -> qxmap_circuit::Circuit {
        let mut c = qxmap_circuit::Circuit::new(3);
        c.cx(0, 1);
        c
    }
}
