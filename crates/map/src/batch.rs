//! Batch mapping across std threads, with whole-solve deduplication.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cache;
use crate::engine::Engine;
use crate::error::MapperError;
use crate::portfolio::Portfolio;
use crate::report::MapReport;
use crate::request::MapRequest;

/// Maps every request with the default [`Portfolio`] engine, in parallel
/// across std threads. The output preserves input order: `results[i]`
/// answers `requests[i]`.
///
/// Batches deduplicate before spawning threads: requests whose canonical
/// circuit skeletons, devices, options and budgets coincide (including
/// relabeled-register equivalents) are grouped, one representative per
/// group is solved on the worker pool through the process-wide
/// [`crate::SolveCache`], and the rest are served from the
/// representative's result — so a batch of a thousand identical
/// subcircuits pays for one solve, and repeated *batches* stop solving
/// entirely. Below the whole-solve layer,
/// repeated (device, subset) pairs still hit the `SwapTable` cache (see
/// `qxmap_arch::SwapTable::shared`). Per-request budgets compose with
/// batching — here every request gets its own deadline and conflict
/// budget:
///
/// ```
/// use std::time::Duration;
/// use qxmap_arch::devices;
/// use qxmap_circuit::Circuit;
/// use qxmap_map::{map_many, MapRequest};
///
/// let requests: Vec<MapRequest> = (2..=4)
///     .map(|n| {
///         let mut c = Circuit::new(n);
///         for q in 0..n - 1 {
///             c.cx(q, q + 1);
///         }
///         MapRequest::new(c, devices::ibm_qx4())
///             .with_conflict_budget(Some(200_000))
///             .with_deadline(Duration::from_secs(30))
///     })
///     .collect();
/// let reports = map_many(&requests);
/// assert_eq!(reports.len(), 3); // input order, one answer per request
/// for report in &reports {
///     let report = report.as_ref().expect("chains map on QX4");
///     println!("{} via {} in {:?}", report.cost, report.engine, report.elapsed);
/// }
/// ```
pub fn map_many(requests: &[MapRequest]) -> Vec<Result<MapReport, MapperError>> {
    map_many_with(&Portfolio::new(), requests)
}

/// [`map_many`] with an explicit engine.
///
/// Unique requests (after skeleton-level deduplication — see
/// [`map_many`]) are distributed over `min(available_parallelism, len)`
/// worker threads through an atomic work queue; slots are written back by
/// index, so the output order is the input order regardless of which
/// worker finishes first. Duplicate slots are then answered — also in
/// parallel — directly from their group representative's result (marked
/// [`MapReport::served_from_cache`], layouts translated for relabeled
/// equivalents) or, if the representative failed, by cloning its error.
///
/// Every answer goes through [`Engine::run_cached`]: custom engines whose
/// configuration changes their answers must override
/// [`Engine::cache_signature`], or differently-configured instances
/// sharing a [`Engine::name`] would serve each other's cached results.
pub fn map_many_with<E: Engine + ?Sized>(
    engine: &E,
    requests: &[MapRequest],
) -> Vec<Result<MapReport, MapperError>> {
    if requests.is_empty() {
        return Vec::new();
    }
    // Group identical work before spawning anything, under the *same*
    // typed key the SolveCache uses (grouping and cache identity can
    // never drift apart). The first index of each group is its
    // representative; the rest are served after the representatives. The
    // keys are kept: their skeletons translate duplicate answers in
    // phase 2 without recanonicalizing anything.
    let signature = engine.cache_signature();
    let keys: Vec<cache::CacheKey> = requests
        .iter()
        .map(|request| cache::request_key(&signature, request))
        .collect();
    let mut groups: HashMap<&cache::CacheKey, usize> = HashMap::new();
    let mut representative: Vec<usize> = Vec::with_capacity(requests.len());
    for (i, key) in keys.iter().enumerate() {
        representative.push(*groups.entry(key).or_insert(i));
    }

    let unique: Vec<usize> = representative
        .iter()
        .enumerate()
        .filter(|&(i, &r)| i == r)
        .map(|(i, _)| i)
        .collect();
    let duplicates: Vec<usize> = representative
        .iter()
        .enumerate()
        .filter(|&(i, &r)| i != r)
        .map(|(i, _)| i)
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(requests.len());

    let slots: Vec<Mutex<Option<Result<MapReport, MapperError>>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();
    let run_pool = |indices: &[usize], work: &(dyn Fn(usize) + Sync)| {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(indices.len()) {
                scope.spawn(|| loop {
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = indices.get(u) else {
                        break;
                    };
                    work(i);
                });
            }
        });
    };

    // Phase 1: solve one representative per group.
    run_pool(&unique, &|i| {
        let result = engine.run_cached(&requests[i]);
        *slots[i].lock().expect("no panics while holding the lock") = Some(result);
    });
    // Phase 2: serve the duplicates straight from their representative's
    // result (layouts translated for relabeled equivalents) — not via the
    // cache, whose LRU could have evicted the entry under a batch wider
    // than its capacity. A failed representative's error is cloned:
    // re-deriving an infeasibility proof per duplicate would defeat the
    // dedup.
    run_pool(&duplicates, &|i| {
        let rep = representative[i];
        let rep_outcome = slots[rep]
            .lock()
            .expect("no panics while holding the lock")
            .clone()
            .expect("representatives were solved in phase 1");
        let result = match rep_outcome {
            Ok(report) => {
                Ok(
                    cache::serve_duplicate(&keys[rep].skeleton, report, &keys[i].skeleton)
                        .expect("one dedup group implies equal canonical skeletons"),
                )
            }
            Err(e) => Err(e),
        };
        *slots[i].lock().expect("no panics while holding the lock") = Some(result);
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers have exited")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HeuristicEngine;
    use qxmap_arch::devices;
    use qxmap_circuit::Circuit;

    /// A chain circuit with `n` qubits — distinguishable per request.
    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(map_many(&[]).is_empty());
    }

    #[test]
    fn results_align_with_requests() {
        let requests: Vec<MapRequest> = (2..=5)
            .map(|n| MapRequest::new(chain(n), devices::ibm_qx4()))
            .collect();
        let results = map_many(&requests);
        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            let report = result.as_ref().expect("QX4 maps every chain");
            assert_eq!(
                report.mapped.num_qubits(),
                request.device().num_qubits(),
                "report does not match its request slot"
            );
            report.verify(request.circuit(), request.device()).unwrap();
        }
    }

    #[test]
    fn duplicates_are_served_from_their_representative() {
        let base = chain(4);
        // The same circuit with registers reversed: same dedup group.
        let relabeled = base.map_qubits(4, |q| 3 - q);
        let cm = devices::ibm_qx4();
        let requests = vec![
            MapRequest::new(base.clone(), cm.clone()),
            MapRequest::new(relabeled.clone(), cm.clone()),
            MapRequest::new(base.clone(), cm.clone()),
        ];
        let results = map_many_with(&HeuristicEngine::naive(), &requests);
        let rep = results[0].as_ref().expect("mappable");
        for (i, circuit) in [(1usize, &relabeled), (2, &base)] {
            let served = results[i].as_ref().expect("mappable");
            assert!(served.served_from_cache, "slot {i} was re-solved");
            assert!(served.winner.starts_with("cache/"), "{}", served.winner);
            assert_eq!(served.cost, rep.cost);
            served.verify(circuit, &cm).expect("translated layouts");
        }
    }

    #[test]
    fn errors_stay_in_their_slot() {
        let requests = vec![
            MapRequest::new(chain(3), devices::ibm_qx4()),
            MapRequest::new(chain(7), devices::ibm_qx4()), // too many qubits
            MapRequest::new(chain(2), devices::ibm_qx4()),
        ];
        let results = map_many_with(&HeuristicEngine::naive(), &requests);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(MapperError::TooManyQubits {
                logical: 7,
                physical: 5
            })
        ));
        assert!(results[2].is_ok());
    }
}
