//! Batch mapping across std threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::engine::Engine;
use crate::error::MapperError;
use crate::portfolio::Portfolio;
use crate::report::MapReport;
use crate::request::MapRequest;

/// Maps every request with the default [`Portfolio`] engine, in parallel
/// across std threads. The output preserves input order: `results[i]`
/// answers `requests[i]`.
///
/// Repeated (device, subset) pairs across a batch hit the process-wide
/// `SwapTable` cache (see `qxmap_arch::SwapTable::shared`), so identical
/// requests stop paying the table-construction cost after the first.
/// Per-request budgets compose with batching — here every request gets
/// its own deadline and conflict budget:
///
/// ```
/// use std::time::Duration;
/// use qxmap_arch::devices;
/// use qxmap_circuit::Circuit;
/// use qxmap_map::{map_many, MapRequest};
///
/// let requests: Vec<MapRequest> = (2..=4)
///     .map(|n| {
///         let mut c = Circuit::new(n);
///         for q in 0..n - 1 {
///             c.cx(q, q + 1);
///         }
///         MapRequest::new(c, devices::ibm_qx4())
///             .with_conflict_budget(Some(200_000))
///             .with_deadline(Duration::from_secs(30))
///     })
///     .collect();
/// let reports = map_many(&requests);
/// assert_eq!(reports.len(), 3); // input order, one answer per request
/// for report in &reports {
///     let report = report.as_ref().expect("chains map on QX4");
///     println!("{} via {} in {:?}", report.cost, report.engine, report.elapsed);
/// }
/// ```
pub fn map_many(requests: &[MapRequest]) -> Vec<Result<MapReport, MapperError>> {
    map_many_with(&Portfolio::new(), requests)
}

/// [`map_many`] with an explicit engine.
///
/// Requests are distributed over `min(available_parallelism, len)` worker
/// threads through an atomic work queue; slots are written back by index,
/// so the output order is the input order regardless of which worker
/// finishes first.
pub fn map_many_with<E: Engine + ?Sized>(
    engine: &E,
    requests: &[MapRequest],
) -> Vec<Result<MapReport, MapperError>> {
    if requests.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(requests.len());

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<MapReport, MapperError>>>> =
        requests.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(request) = requests.get(i) else {
                    break;
                };
                let result = engine.run(request);
                *slots[i].lock().expect("no panics while holding the lock") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers have exited")
                .expect("every index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HeuristicEngine;
    use qxmap_arch::devices;
    use qxmap_circuit::Circuit;

    /// A chain circuit with `n` qubits — distinguishable per request.
    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(map_many(&[]).is_empty());
    }

    #[test]
    fn results_align_with_requests() {
        let requests: Vec<MapRequest> = (2..=5)
            .map(|n| MapRequest::new(chain(n), devices::ibm_qx4()))
            .collect();
        let results = map_many(&requests);
        assert_eq!(results.len(), requests.len());
        for (request, result) in requests.iter().zip(&results) {
            let report = result.as_ref().expect("QX4 maps every chain");
            assert_eq!(
                report.mapped.num_qubits(),
                request.device().num_qubits(),
                "report does not match its request slot"
            );
            report.verify(request.circuit(), request.device()).unwrap();
        }
    }

    #[test]
    fn errors_stay_in_their_slot() {
        let requests = vec![
            MapRequest::new(chain(3), devices::ibm_qx4()),
            MapRequest::new(chain(7), devices::ibm_qx4()), // too many qubits
            MapRequest::new(chain(2), devices::ibm_qx4()),
        ];
        let results = map_many_with(&HeuristicEngine::naive(), &requests);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(MapperError::TooManyQubits {
                logical: 7,
                physical: 5
            })
        ));
        assert!(results[2].is_ok());
    }
}
