//! The unified mapper error.

use std::error::Error;
use std::fmt;

use qxmap_core::MapError;
use qxmap_heuristic::HeuristicError;

/// Any way a mapping request can fail, across every engine.
///
/// Replaces the per-layer pair `qxmap_core::MapError` /
/// `qxmap_heuristic::HeuristicError` at the public surface; both convert
/// losslessly via `From`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapperError {
    /// The circuit has more logical qubits than the device has physical
    /// qubits.
    TooManyQubits {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The instance (possibly restricted by a Section 4.2 strategy or an
    /// upper bound) admits no valid mapping.
    Infeasible,
    /// A solve budget — the conflict budget, the request's deadline, or
    /// an external cancellation — ran out before any mapping was found.
    BudgetExhausted,
    /// The exact method is exhaustive over permutations; devices (or
    /// subsets) beyond this size are out of its regime.
    DeviceTooLarge {
        /// Qubits in the (sub)device.
        qubits: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The device graph cannot route the circuit (disconnected).
    Unroutable,
    /// No mapping strictly below the request's declared upper bound was
    /// found — without proof that none exists (the search was heuristic,
    /// restricted, or out of the exact regime). A *proof* of nonexistence
    /// is reported as [`MapperError::Infeasible`] instead.
    BoundUnmet {
        /// The declared upper bound.
        bound: u64,
    },
    /// The caller demanded [`crate::Guarantee::Optimal`] but no engine
    /// could provide a minimality proof for this instance.
    OptimalityUnavailable {
        /// Why the proof is out of reach.
        reason: String,
    },
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::TooManyQubits { logical, physical } => {
                qxmap_arch::errors::fmt_too_many_qubits(f, *logical, *physical)
            }
            MapperError::Infeasible => {
                write!(f, "no valid mapping exists under the chosen restrictions")
            }
            MapperError::BudgetExhausted => {
                write!(
                    f,
                    "the solve budget (conflicts or deadline) ran out before a mapping was found"
                )
            }
            MapperError::DeviceTooLarge { qubits, max } => write!(
                f,
                "exact mapping enumerates all qubit permutations; {qubits} qubits exceeds the supported {max}"
            ),
            MapperError::Unroutable => {
                write!(f, "the coupling graph cannot route the circuit")
            }
            MapperError::BoundUnmet { bound } => write!(
                f,
                "no mapping strictly below the declared upper bound {bound} was found"
            ),
            MapperError::OptimalityUnavailable { reason } => {
                write!(f, "an optimality proof was demanded but is unavailable: {reason}")
            }
        }
    }
}

impl MapperError {
    /// The standard rejection for [`crate::Guarantee::Optimal`] runs whose
    /// proof did not close before a budget (conflicts or deadline) ran
    /// out — one message, shared by every engine.
    pub(crate) fn proof_budget_exhausted() -> MapperError {
        MapperError::OptimalityUnavailable {
            reason: "the solve budget (conflicts or deadline) ran out before the proof closed"
                .to_string(),
        }
    }
}

impl Error for MapperError {}

impl From<MapError> for MapperError {
    fn from(e: MapError) -> MapperError {
        match e {
            MapError::TooManyQubits { logical, physical } => {
                MapperError::TooManyQubits { logical, physical }
            }
            MapError::Infeasible => MapperError::Infeasible,
            MapError::BudgetExhausted => MapperError::BudgetExhausted,
            MapError::DeviceTooLarge { qubits, max } => MapperError::DeviceTooLarge { qubits, max },
        }
    }
}

impl From<HeuristicError> for MapperError {
    fn from(e: HeuristicError) -> MapperError {
        match e {
            HeuristicError::TooManyQubits { logical, physical } => {
                MapperError::TooManyQubits { logical, physical }
            }
            HeuristicError::Unroutable => MapperError::Unroutable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_structure() {
        let e: MapperError = MapError::TooManyQubits {
            logical: 6,
            physical: 5,
        }
        .into();
        assert_eq!(
            e,
            MapperError::TooManyQubits {
                logical: 6,
                physical: 5
            }
        );
        let e: MapperError = HeuristicError::Unroutable.into();
        assert_eq!(e, MapperError::Unroutable);
        let e: MapperError = MapError::BudgetExhausted.into();
        assert_eq!(e, MapperError::BudgetExhausted);
    }

    #[test]
    fn too_many_qubits_text_is_shared_across_all_three_error_types() {
        let unified = MapperError::TooManyQubits {
            logical: 6,
            physical: 5,
        }
        .to_string();
        let core = MapError::TooManyQubits {
            logical: 6,
            physical: 5,
        }
        .to_string();
        let heuristic = HeuristicError::TooManyQubits {
            logical: 6,
            physical: 5,
        }
        .to_string();
        assert_eq!(unified, core);
        assert_eq!(unified, heuristic);
    }
}
