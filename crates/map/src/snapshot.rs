//! The versioned on-disk snapshot format behind
//! [`crate::SolveCache::export_snapshot`] /
//! [`crate::SolveCache::import_snapshot`].
//!
//! A snapshot is a self-contained byte stream:
//!
//! ```text
//! magic  "QXSNAPSH"           8 bytes
//! version u32 LE              bumped on any encoding change
//! count   u64 LE              number of entries
//! entries …                   key + stored report, recency order
//! checksum u64 LE             FNV-1a over everything before it
//! ```
//!
//! Entries are written least-recently-used first, so an importer that
//! replays them in order reconstructs the exporter's LRU order exactly —
//! capacity-constrained imports then keep the *freshest* entries, the
//! same ones the exporter's own eviction policy would have kept.
//!
//! The format is an internal persistence layer, not an interchange
//! format: readers reject unknown versions outright (a version bump is
//! cheaper than a migration path for a cache that can always be
//! re-warmed), and the trailing checksum rejects truncated or corrupted
//! files before a single entry is admitted. All integers are
//! little-endian; angles travel as IEEE-754 bit patterns, so round-trips
//! are exact.

use std::fmt;
use std::time::Duration;

use qxmap_arch::Layout;
use qxmap_circuit::{Circuit, CircuitSkeleton, Gate, OneQubitKind};

use crate::report::{CostBreakdown, MapReport, WindowCertificate};

/// Magic bytes opening every snapshot.
pub(crate) const MAGIC: &[u8; 8] = b"QXSNAPSH";

/// The snapshot encoding version this build reads and writes. Any change
/// to the entry encoding (or to the skeleton token stream it embeds)
/// must bump this, so stale files are rejected cleanly instead of
/// misread.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a snapshot was rejected. Imports are all-or-nothing: a rejected
/// snapshot admits no entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream does not open with the snapshot magic — not a snapshot
    /// file at all.
    BadMagic,
    /// The stream was written by a different (newer or older) encoding
    /// version.
    VersionMismatch {
        /// Version found in the stream.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The stream ended before the declared content did — a truncated
    /// write or partial download.
    Truncated,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// The stream decodes to structurally invalid data (an impossible
    /// layout, a non-permutation label vector, an unknown tag …).
    Corrupted(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a qxmap solve-cache snapshot"),
            SnapshotError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot version {found} is not the supported version {supported}"
            ),
            SnapshotError::Truncated => write!(f, "snapshot ends before its declared content"),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch (corrupted content)")
            }
            SnapshotError::Corrupted(what) => write!(f, "snapshot decodes to invalid data: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The entry count a snapshot byte stream declares in its header —
/// `None` unless the stream opens with this build's magic and
/// [`SNAPSHOT_VERSION`]. A header peek for logging and tooling
/// (nothing past the count is validated; importing still performs the
/// full checksum and structural checks).
pub fn snapshot_entry_count(bytes: &[u8]) -> Option<usize> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    if r.u32().ok()? != SNAPSHOT_VERSION {
        return None;
    }
    usize::try_from(r.u64().ok()?).ok()
}

/// FNV-1a over a byte slice — the checksum sealing a snapshot.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Append-only byte sink with the format's primitive encoders.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        &self.buf
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.raw(s.as_bytes());
    }

    pub(crate) fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    pub(crate) fn usizes(&mut self, vs: &[usize]) {
        self.usize(vs.len());
        for &v in vs {
            self.usize(v);
        }
    }

    /// Durations travel as nanoseconds, saturated into `u64` (≈ 584
    /// years — far beyond any solve).
    pub(crate) fn duration(&mut self, d: Duration) {
        self.u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// Cursor over a snapshot's bytes with the matching primitive decoders;
/// every read is bounds-checked and a short stream reads as
/// [`SnapshotError::Truncated`].
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Byte offset into the underlying stream — lets callers recover the
    /// exact span a value decoded from (e.g. to share equal payloads).
    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupted("oversized length"))
    }

    /// A length that must still fit in the stream (each element takes at
    /// least one byte) — rejects absurd lengths before any allocation.
    pub(crate) fn len(&mut self) -> Result<usize, SnapshotError> {
        self.len_of(1)
    }

    /// A length whose elements each take at least `width` encoded bytes.
    /// The guard must match the decoder's allocation width: a collect
    /// with an exact size hint preallocates `n × sizeof(elem)` up front,
    /// so bounding `n` by remaining *bytes* alone would let a sealed
    /// hostile stream demand several times its own file size before the
    /// first truncation error fires.
    pub(crate) fn len_of(&mut self, width: usize) -> Result<usize, SnapshotError> {
        let n = self.usize()?;
        if n > self.remaining() / width.max(1) {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    pub(crate) fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(SnapshotError::Corrupted("option tag")),
        }
    }

    pub(crate) fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Corrupted("non-UTF-8 string"))
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.len_of(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub(crate) fn usizes(&mut self) -> Result<Vec<usize>, SnapshotError> {
        let n = self.len_of(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    pub(crate) fn duration(&mut self) -> Result<Duration, SnapshotError> {
        Ok(Duration::from_nanos(self.u64()?))
    }
}

// ---------------------------------------------------------------------
// Domain codecs: skeleton, gate, circuit, layout, report.
// ---------------------------------------------------------------------

pub(crate) fn write_skeleton(w: &mut Writer, skeleton: &CircuitSkeleton) {
    w.usize(skeleton.num_qubits());
    w.usize(skeleton.num_clbits());
    w.u64s(skeleton.tokens());
    w.usizes(skeleton.canonical_labels());
}

pub(crate) fn read_skeleton(r: &mut Reader<'_>) -> Result<CircuitSkeleton, SnapshotError> {
    let num_qubits = r.usize()?;
    let num_clbits = r.usize()?;
    let tokens = r.u64s()?;
    let canon = r.usizes()?;
    CircuitSkeleton::from_parts(num_qubits, num_clbits, tokens, canon)
        .ok_or(SnapshotError::Corrupted("skeleton labels"))
}

fn write_one_qubit_kind(w: &mut Writer, kind: &OneQubitKind) {
    let (tag, angles): (u8, &[f64]) = match kind {
        OneQubitKind::I => (0, &[]),
        OneQubitKind::X => (1, &[]),
        OneQubitKind::Y => (2, &[]),
        OneQubitKind::Z => (3, &[]),
        OneQubitKind::H => (4, &[]),
        OneQubitKind::S => (5, &[]),
        OneQubitKind::Sdg => (6, &[]),
        OneQubitKind::T => (7, &[]),
        OneQubitKind::Tdg => (8, &[]),
        OneQubitKind::Rx(a) => (9, std::slice::from_ref(a)),
        OneQubitKind::Ry(a) => (10, std::slice::from_ref(a)),
        OneQubitKind::Rz(a) => (11, std::slice::from_ref(a)),
        OneQubitKind::Phase(a) => (12, std::slice::from_ref(a)),
        OneQubitKind::U(t, p, l) => {
            w.u8(13);
            w.u64(t.to_bits());
            w.u64(p.to_bits());
            w.u64(l.to_bits());
            return;
        }
    };
    w.u8(tag);
    for a in angles {
        w.u64(a.to_bits());
    }
}

fn read_one_qubit_kind(r: &mut Reader<'_>) -> Result<OneQubitKind, SnapshotError> {
    let angle = |r: &mut Reader<'_>| -> Result<f64, SnapshotError> { Ok(f64::from_bits(r.u64()?)) };
    Ok(match r.u8()? {
        0 => OneQubitKind::I,
        1 => OneQubitKind::X,
        2 => OneQubitKind::Y,
        3 => OneQubitKind::Z,
        4 => OneQubitKind::H,
        5 => OneQubitKind::S,
        6 => OneQubitKind::Sdg,
        7 => OneQubitKind::T,
        8 => OneQubitKind::Tdg,
        9 => OneQubitKind::Rx(angle(r)?),
        10 => OneQubitKind::Ry(angle(r)?),
        11 => OneQubitKind::Rz(angle(r)?),
        12 => OneQubitKind::Phase(angle(r)?),
        13 => OneQubitKind::U(angle(r)?, angle(r)?, angle(r)?),
        _ => return Err(SnapshotError::Corrupted("one-qubit gate tag")),
    })
}

fn write_gate(w: &mut Writer, gate: &Gate) {
    match gate {
        Gate::One { kind, qubit } => {
            w.u8(1);
            write_one_qubit_kind(w, kind);
            w.usize(*qubit);
        }
        Gate::Cnot { control, target } => {
            w.u8(2);
            w.usize(*control);
            w.usize(*target);
        }
        Gate::Swap { a, b } => {
            w.u8(3);
            w.usize(*a);
            w.usize(*b);
        }
        Gate::Barrier(qs) => {
            w.u8(4);
            w.usizes(qs);
        }
        Gate::Measure { qubit, clbit } => {
            w.u8(5);
            w.usize(*qubit);
            w.usize(*clbit);
        }
    }
}

fn read_gate(r: &mut Reader<'_>) -> Result<Gate, SnapshotError> {
    Ok(match r.u8()? {
        1 => Gate::One {
            kind: read_one_qubit_kind(r)?,
            qubit: r.usize()?,
        },
        2 => Gate::Cnot {
            control: r.usize()?,
            target: r.usize()?,
        },
        3 => Gate::Swap {
            a: r.usize()?,
            b: r.usize()?,
        },
        4 => Gate::Barrier(r.usizes()?),
        5 => Gate::Measure {
            qubit: r.usize()?,
            clbit: r.usize()?,
        },
        _ => return Err(SnapshotError::Corrupted("gate tag")),
    })
}

pub(crate) fn write_circuit(w: &mut Writer, circuit: &Circuit) {
    w.str(circuit.name());
    w.usize(circuit.num_qubits());
    w.usize(circuit.num_clbits());
    w.usize(circuit.gates().len());
    for gate in circuit.gates() {
        write_gate(w, gate);
    }
}

pub(crate) fn read_circuit(r: &mut Reader<'_>) -> Result<Circuit, SnapshotError> {
    let name = r.str()?;
    let num_qubits = r.usize()?;
    let num_clbits = r.usize()?;
    let mut circuit = Circuit::with_clbits(num_qubits, num_clbits).named(name);
    let n = r.len()?;
    for _ in 0..n {
        let gate = read_gate(r)?;
        circuit
            .try_push(gate)
            .map_err(|_| SnapshotError::Corrupted("gate out of range"))?;
    }
    Ok(circuit)
}

pub(crate) fn write_layout(w: &mut Writer, layout: &Layout) {
    w.usize(layout.num_phys());
    w.usize(layout.as_log2phys().len());
    for slot in layout.as_log2phys() {
        match slot {
            None => w.u8(0),
            Some(p) => {
                w.u8(1);
                w.usize(*p);
            }
        }
    }
}

pub(crate) fn read_layout(r: &mut Reader<'_>) -> Result<Layout, SnapshotError> {
    let num_phys = r.usize()?;
    let n = r.len()?;
    // No up-front capacity: slots encode in as little as one byte, so a
    // hostile length could otherwise demand ~16x the stream's size in
    // one allocation; layouts are tiny, growth is amortized.
    let mut log2phys = Vec::new();
    for _ in 0..n {
        log2phys.push(match r.u8()? {
            0 => None,
            1 => Some(r.usize()?),
            _ => return Err(SnapshotError::Corrupted("layout slot tag")),
        });
    }
    Layout::from_log2phys(log2phys, num_phys).map_err(|_| SnapshotError::Corrupted("layout"))
}

pub(crate) fn write_report(w: &mut Writer, report: &MapReport) {
    w.str(&report.engine);
    w.str(&report.winner);
    write_circuit(w, &report.mapped);
    write_layout(w, &report.initial_layout);
    write_layout(w, &report.final_layout);
    w.u64(report.cost.objective);
    w.u32(report.cost.swaps);
    w.u32(report.cost.reversals);
    w.u64(report.cost.added_gates);
    w.u8(u8::from(report.proved_optimal));
    w.duration(report.runtime);
    w.duration(report.elapsed);
    match &report.subset {
        None => w.u8(0),
        Some(subset) => {
            w.u8(1);
            w.usizes(subset);
        }
    }
    w.opt_u64(report.num_change_points.map(|v| v as u64));
    w.opt_u64(report.iterations.map(u64::from));
    match &report.windows {
        None => w.u8(0),
        Some(windows) => {
            w.u8(1);
            w.usize(windows.len());
            for cert in windows {
                write_window_certificate(w, cert);
            }
        }
    }
}

fn write_window_certificate(w: &mut Writer, cert: &WindowCertificate) {
    w.usize(cert.index);
    w.usizes(&cert.qubits);
    w.usizes(&cert.region);
    w.usize(cert.gates);
    w.u64(cert.objective);
    w.u8(u8::from(cert.proved_optimal));
    w.u8(u8::from(cert.served_from_cache));
    w.str(&cert.engine);
    w.u32(cert.bridge_swaps);
    w.u64(cert.bridge_cost);
}

fn read_window_certificate(r: &mut Reader<'_>) -> Result<WindowCertificate, SnapshotError> {
    let flag = |r: &mut Reader<'_>, what| match r.u8() {
        Ok(0) => Ok(false),
        Ok(1) => Ok(true),
        Ok(_) => Err(SnapshotError::Corrupted(what)),
        Err(e) => Err(e),
    };
    Ok(WindowCertificate {
        index: r.usize()?,
        qubits: r.usizes()?,
        region: r.usizes()?,
        gates: r.usize()?,
        objective: r.u64()?,
        proved_optimal: flag(r, "window proved flag")?,
        served_from_cache: flag(r, "window cache flag")?,
        engine: r.str()?,
        bridge_swaps: r.u32()?,
        bridge_cost: r.u64()?,
    })
}

pub(crate) fn read_report(r: &mut Reader<'_>) -> Result<MapReport, SnapshotError> {
    let engine = r.str()?;
    let winner = r.str()?;
    let mapped = read_circuit(r)?;
    let initial_layout = read_layout(r)?;
    let final_layout = read_layout(r)?;
    let objective = r.u64()?;
    let swaps = r.u32()?;
    let reversals = r.u32()?;
    let added_gates = r.u64()?;
    let proved_optimal = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupted("proved_optimal flag")),
    };
    let runtime = r.duration()?;
    let elapsed = r.duration()?;
    let subset = match r.u8()? {
        0 => None,
        1 => Some(r.usizes()?),
        _ => return Err(SnapshotError::Corrupted("subset tag")),
    };
    let num_change_points = r
        .opt_u64()?
        .map(|v| usize::try_from(v).map_err(|_| SnapshotError::Corrupted("change points")))
        .transpose()?;
    let iterations = r
        .opt_u64()?
        .map(|v| u32::try_from(v).map_err(|_| SnapshotError::Corrupted("iterations")))
        .transpose()?;
    let windows = match r.u8()? {
        0 => None,
        1 => {
            // Certificates encode in well over 8 bytes each; the length
            // guard only needs a conservative per-element floor.
            let n = r.len_of(8)?;
            let mut certs = Vec::new();
            for _ in 0..n {
                certs.push(read_window_certificate(r)?);
            }
            Some(certs)
        }
        _ => return Err(SnapshotError::Corrupted("windows tag")),
    };
    Ok(MapReport {
        engine,
        winner,
        mapped,
        initial_layout,
        final_layout,
        cost: CostBreakdown {
            objective,
            swaps,
            reversals,
            added_gates,
        },
        proved_optimal,
        runtime,
        elapsed,
        // Stored reports are always the unmarked originals; cache
        // bookkeeping is applied to served clones at lookup time.
        served_from_cache: false,
        subset,
        num_change_points,
        iterations,
        windows,
        // Traces are per-request and never persisted (the cache strips
        // them before insert; the codec has no frame for them).
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_circuit::paper_example;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.opt_u64(None);
        w.opt_u64(Some(42));
        w.str("héllo");
        w.u64s(&[1, 2, 3]);
        w.usizes(&[4, 5]);
        w.duration(Duration::from_micros(1234));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.usizes().unwrap(), vec![4, 5]);
        assert_eq!(r.duration().unwrap(), Duration::from_micros(1234));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8().unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn circuit_codec_round_trips_every_gate_kind() {
        let mut c = Circuit::with_clbits(3, 2).named("all-gates");
        c.h(0).x(1).y(2).z(0).s(1).sdg(2).t(0).tdg(1);
        c.rx(0.5, 0).ry(-1.25, 1).rz(std::f64::consts::PI, 2);
        c.u(0.1, 0.2, 0.3, 0);
        c.cx(0, 1).swap_gate(1, 2).barrier().measure(0, 1);
        let mut w = Writer::new();
        write_circuit(&mut w, &c);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_circuit(&mut r).unwrap();
        assert_eq!(c, back);
        assert_eq!(back.name(), "all-gates");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn skeleton_codec_round_trips() {
        let skel = CircuitSkeleton::of(&paper_example());
        let mut w = Writer::new();
        write_skeleton(&mut w, &skel);
        let bytes = w.into_bytes();
        let back = read_skeleton(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(skel, back);
        assert_eq!(skel.canonical_labels(), back.canonical_labels());
    }

    #[test]
    fn layout_codec_rejects_conflicts() {
        let mut layout = Layout::new(2, 4);
        layout.assign(0, 3).unwrap();
        let mut w = Writer::new();
        write_layout(&mut w, &layout);
        let bytes = w.into_bytes();
        let back = read_layout(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.phys_of(0), Some(3));
        assert_eq!(back.phys_of(1), None);

        // Two logical qubits on one physical qubit is structurally
        // invalid and must be rejected, not trusted.
        let mut w = Writer::new();
        w.usize(4); // num_phys
        w.usize(2); // slots
        w.u8(1);
        w.usize(3);
        w.u8(1);
        w.usize(3);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_layout(&mut Reader::new(&bytes)),
            Err(SnapshotError::Corrupted(_))
        ));
    }

    #[test]
    fn absurd_lengths_are_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX - 1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.u64s().is_err());
    }
}
