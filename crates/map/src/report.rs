//! The unified mapping report.

use std::fmt;
use std::time::Duration;

use qxmap_arch::{CouplingMap, Layout};
use qxmap_circuit::Circuit;
use qxmap_core::verify::{self, VerifyError};
use qxmap_core::{MappingResult, SolveTrace};
use qxmap_heuristic::HeuristicResult;

/// Where the insertion cost of a mapping went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBreakdown {
    /// The modelled objective `F = swap·#SWAP + reverse·#reversal`
    /// (Eq. 5 of the paper under the request's cost model).
    pub objective: u64,
    /// SWAP operations inserted.
    pub swaps: u32,
    /// Direction-reversed CNOTs (repaired with 4 H each).
    pub reversals: u32,
    /// Gates actually added relative to the (SWAP-decomposed) input.
    pub added_gates: u64,
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "F = {} ({} SWAPs, {} reversals, {} gates added)",
            self.objective, self.swaps, self.reversals, self.added_gates
        )
    }
}

/// Per-window provenance of one slice of a window-decomposed solve.
///
/// A windowed engine (e.g. `qxmap_window::WindowedEngine`) breaks a
/// large circuit into interaction-connected blocks, exact-solves each on
/// the device subgraph it was placed on, and stitches the pieces with
/// SWAP bridges. The stitched [`MapReport`] carries no *global*
/// minimality proof, but each window's local solve does produce one —
/// this record preserves it, together with where the window ran and what
/// stitching into it cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCertificate {
    /// Position of the window in solve order (0-based).
    pub index: usize,
    /// The *logical* qubits (original circuit indices) active in this
    /// window.
    pub qubits: Vec<usize>,
    /// The physical qubits (full-device indices) of the connected
    /// subgraph the window was solved on.
    pub region: Vec<usize>,
    /// Costed gates of the original circuit that fell into this window.
    pub gates: usize,
    /// The window's local objective under the request's device model
    /// (bridging excluded — see [`WindowCertificate::bridge_cost`]).
    pub objective: u64,
    /// Whether the window's local solve carries a minimality proof for
    /// its subcircuit on its subgraph — the per-window certificate.
    pub proved_optimal: bool,
    /// Whether the window's solve was answered from the
    /// [`crate::SolveCache`] (windows probe it by their own skeleton
    /// fingerprint).
    pub served_from_cache: bool,
    /// The engine that won the window's local race (e.g.
    /// `portfolio/exact`).
    pub engine: String,
    /// SWAPs the bridge into this window inserted (0 for the first
    /// window — its qubits materialize in place).
    pub bridge_swaps: u32,
    /// Modeled cost of this window's bridge SWAPs under the request's
    /// device model.
    pub bridge_cost: u64,
}

/// One uniform answer to a [`crate::MapRequest`], whichever engine
/// produced it.
#[derive(Debug, Clone)]
pub struct MapReport {
    /// Short name of the engine that produced this result (e.g. `exact`,
    /// `sabre`, `portfolio/exact`).
    pub engine: String,
    /// The engine that actually won the race, without any composite
    /// prefix: for a `portfolio/exact` report this is `exact`; for
    /// single-engine runs it equals [`MapReport::engine`]. Cache-served
    /// answers are marked with a `cache/` prefix (e.g. `cache/exact`), so
    /// the winner always names who did the work *for this request*.
    pub winner: String,
    /// The hardware-legal output circuit.
    pub mapped: Circuit,
    /// Logical→physical layout before the first gate.
    pub initial_layout: Layout,
    /// Logical→physical layout after the last gate.
    pub final_layout: Layout,
    /// Cost of the insertion, broken down.
    pub cost: CostBreakdown,
    /// Whether the reported cost is provably minimal for the requested
    /// formulation — the paper's headline certificate.
    pub proved_optimal: bool,
    /// Wall-clock time the *winning engine* spent on its own run — for a
    /// cache-served answer, the time the original solve spent, preserved
    /// so the report still says what the result cost to produce.
    pub runtime: Duration,
    /// Wall-clock time of the whole request, racing included — what the
    /// caller actually waited. Always at least [`MapReport::runtime`] for
    /// composite engines and equal to it for single-engine runs — except
    /// on a cache hit, where it is the (near-zero) lookup time, not the
    /// original solve's wall-clock.
    pub elapsed: Duration,
    /// Whether this answer came from the process-wide
    /// [`crate::SolveCache`] instead of a fresh solve. Cache-served
    /// reports also carry a `cache/` prefix on [`MapReport::winner`].
    pub served_from_cache: bool,
    /// Physical qubits the mapping was restricted to (exact engines with
    /// the Section 4.1 optimization).
    pub subset: Option<Vec<usize>>,
    /// Number of permutation points `|G'|` (exact engines).
    pub num_change_points: Option<usize>,
    /// Solver iterations spent in minimization (exact engines).
    pub iterations: Option<u32>,
    /// Per-window provenance and optimality certificates of a
    /// window-decomposed solve, in stitch order. `None` for monolithic
    /// engines.
    pub windows: Option<Vec<WindowCertificate>>,
    /// The request's phase timeline, when it carried an enabled
    /// [`crate::MapRequest::with_trace`] recorder — the race spans,
    /// per-subset solver internals and window/bridge spans of *this*
    /// run. `None` for untraced requests, and always `None` on reports
    /// stored in (or served from) the [`crate::SolveCache`]: a cache hit
    /// reports its own lookup, not the original solve's timeline.
    pub trace: Option<SolveTrace>,
}

impl MapReport {
    /// The mapped circuit's total operation count (the paper's column
    /// `c`).
    pub fn mapped_cost(&self) -> usize {
        self.mapped.original_cost()
    }

    /// Structural verification against the original circuit and device:
    /// every CNOT coupling-legal, no residual SWAPs, and the added-gate
    /// accounting consistent.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self, original: &Circuit, cm: &CouplingMap) -> Result<(), VerifyError> {
        verify::check_coupling(&self.mapped, cm)?;
        let original_cost = original.decompose_swaps().original_cost() as u64;
        // A mapped circuit smaller than its input is itself a mismatch the
        // checker must report, not underflow on.
        let recounted = (self.mapped.original_cost() as u64).checked_sub(original_cost);
        if recounted != Some(self.cost.added_gates) {
            return Err(VerifyError::CostMismatch {
                reported: self.cost.added_gates,
                recounted: recounted.unwrap_or(0),
            });
        }
        Ok(())
    }

    /// Builds a report from an exact-engine result.
    pub(crate) fn from_exact(result: MappingResult, engine: &str) -> MapReport {
        MapReport {
            engine: engine.to_string(),
            winner: engine.to_string(),
            cost: CostBreakdown {
                objective: result.cost,
                swaps: result.swaps,
                reversals: result.reversals,
                added_gates: result.added_gates,
            },
            proved_optimal: result.proved_optimal,
            runtime: result.runtime,
            elapsed: result.runtime,
            served_from_cache: false,
            subset: Some(result.subset),
            num_change_points: Some(result.num_change_points),
            iterations: Some(result.iterations),
            windows: None,
            trace: None,
            mapped: result.mapped,
            initial_layout: result.initial_layout,
            final_layout: result.final_layout,
        }
    }

    /// Builds a report from a heuristic result; the objective is the
    /// result's per-edge price under the run's device model. Only a
    /// zero-objective result is claimed optimal: costs are non-negative,
    /// so nothing beats 0 — whereas a zero-*insertion* run can still pay
    /// calibration overheads (dear CNOT edges, reversal surcharges) that
    /// a better layout avoids, so `added_gates == 0` alone certifies
    /// nothing.
    pub(crate) fn from_heuristic(result: HeuristicResult, engine: &str) -> MapReport {
        let objective = result.model_cost;
        MapReport {
            engine: engine.to_string(),
            winner: engine.to_string(),
            cost: CostBreakdown {
                objective,
                swaps: result.swaps,
                reversals: result.reversals,
                added_gates: result.added_gates,
            },
            proved_optimal: objective == 0,
            runtime: result.runtime,
            elapsed: result.runtime,
            served_from_cache: false,
            subset: None,
            num_change_points: None,
            iterations: None,
            windows: None,
            trace: None,
            mapped: result.mapped,
            initial_layout: result.initial_layout,
            final_layout: result.final_layout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_breakdown_renders_all_fields() {
        let c = CostBreakdown {
            objective: 11,
            swaps: 1,
            reversals: 1,
            added_gates: 11,
        };
        let s = c.to_string();
        assert!(s.contains("F = 11"));
        assert!(s.contains("1 SWAPs"));
        assert!(s.contains("1 reversals"));
    }
}
