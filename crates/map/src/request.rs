//! The unified mapping request.

use std::sync::OnceLock;
use std::time::Duration;

use qxmap_arch::{CostModel, CouplingMap, DeviceModel};
use qxmap_circuit::Circuit;
use qxmap_core::{SpanRecorder, Strategy};

/// How strong a result the caller demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Guarantee {
    /// The result must carry a proof of minimality; engines error out when
    /// they cannot provide one (e.g. the device exceeds the exact method's
    /// regime).
    Optimal,
    /// Best result obtainable within the request's budgets; engines may
    /// fall back to heuristics and `proved_optimal` may be `false`.
    #[default]
    BestEffort,
}

/// Everything a mapping engine needs to answer one mapping question.
///
/// Built in builder style; every knob has a sensible default. The two
/// budgets compose: the conflict budget caps solver *work*, the deadline
/// caps *wall-clock* — whichever fires first ends the exact search, and
/// a best-effort engine then answers with the best result in hand:
///
/// ```
/// use std::time::Duration;
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_map::{Guarantee, MapRequest};
///
/// let request = MapRequest::new(paper_example(), devices::ibm_qx4())
///     .with_guarantee(Guarantee::Optimal)
///     .with_conflict_budget(Some(50_000))
///     .with_deadline(Duration::from_millis(250))
///     .with_seed(7);
/// assert_eq!(request.device().num_qubits(), 5);
/// assert_eq!(request.deadline(), Some(Duration::from_millis(250)));
/// ```
#[derive(Debug, Clone)]
pub struct MapRequest {
    circuit: Circuit,
    /// The device of a uniform-model request (always `Some` while
    /// `model` is unbuilt). Explicit-model requests store `None` and
    /// read the map off the model instead of keeping a second copy.
    device: Option<CouplingMap>,
    /// The device/cost model every engine answers under. For requests
    /// built with [`MapRequest::new`] this is the uniform model derived
    /// from the device and [`MapRequest::cost_model`] — built lazily on
    /// first [`MapRequest::device_model`] access, so builder chains that
    /// end in an explicit model never pay for the discarded derivation
    /// (the model's all-pairs matrices are real work on large devices).
    /// Explicit models ([`MapRequest::for_model`] /
    /// [`MapRequest::with_device_model`]) carry per-edge calibration,
    /// win over the uniform derivation, and are stored here eagerly.
    model: OnceLock<DeviceModel>,
    explicit_model: bool,
    cost_model: CostModel,
    guarantee: Guarantee,
    strategy: Strategy,
    use_subsets: bool,
    conflict_budget: Option<u64>,
    deadline: Option<Duration>,
    upper_bound: Option<u64>,
    seed: u64,
    /// Trace recorder engines report their phase spans to. Defaults to
    /// the disabled recorder (free no-ops); deliberately **not** part of
    /// the request's cache identity — traced and untraced requests share
    /// cache entries.
    trace: SpanRecorder,
}

impl MapRequest {
    /// A request with default settings: the paper's 7/4 cost model,
    /// [`Guarantee::BestEffort`], permutations before every gate, the
    /// Section 4.1 subset optimization enabled, no budgets, seed 0.
    pub fn new(circuit: Circuit, device: CouplingMap) -> MapRequest {
        MapRequest {
            circuit,
            device: Some(device),
            model: OnceLock::new(),
            explicit_model: false,
            cost_model: CostModel::default(),
            guarantee: Guarantee::default(),
            strategy: Strategy::default(),
            use_subsets: true,
            conflict_budget: None,
            deadline: None,
            upper_bound: None,
            seed: 0,
            trace: SpanRecorder::disabled(),
        }
    }

    /// A request against an explicit [`DeviceModel`] — per-edge
    /// calibration costs, precomputed distances and the device
    /// fingerprint all come from the model. Everything else defaults like
    /// [`MapRequest::new`].
    ///
    /// ```
    /// use qxmap_arch::{devices, DeviceModel};
    /// use qxmap_circuit::paper_example;
    /// use qxmap_map::MapRequest;
    ///
    /// let model = DeviceModel::new(devices::ibm_qx4()).with_swap_cost(3, 4, 21);
    /// let request = MapRequest::for_model(paper_example(), model);
    /// assert_eq!(request.device_model().swap_cost(3, 4), Some(21));
    /// ```
    pub fn for_model(circuit: Circuit, model: DeviceModel) -> MapRequest {
        MapRequest {
            circuit,
            device: None,
            model: OnceLock::from(model),
            explicit_model: true,
            cost_model: CostModel::default(),
            guarantee: Guarantee::default(),
            strategy: Strategy::default(),
            use_subsets: true,
            conflict_budget: None,
            deadline: None,
            upper_bound: None,
            seed: 0,
            trace: SpanRecorder::disabled(),
        }
    }

    /// Replaces the request's device model (builder style) — the explicit
    /// model's coupling map becomes the request's device and its per-edge
    /// costs price every engine's answer from here on.
    pub fn with_device_model(mut self, model: DeviceModel) -> MapRequest {
        self.device = None;
        self.model = OnceLock::from(model);
        self.explicit_model = true;
        self
    }

    /// Sets the cost accounting for inserted operations. On requests
    /// without an explicit device model the uniform model is re-derived
    /// from the new weights (lazily, on next [`MapRequest::device_model`]
    /// access); an explicit model keeps pricing the run (the model *is*
    /// the cost model), and this only records the headline weights.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> MapRequest {
        self.cost_model = cost_model;
        if !self.explicit_model {
            self.model = OnceLock::new();
        }
        self
    }

    /// Sets the demanded guarantee level.
    pub fn with_guarantee(mut self, guarantee: Guarantee) -> MapRequest {
        self.guarantee = guarantee;
        self
    }

    /// Sets the permutation-site strategy used by exact engines
    /// (Section 4.2 of the paper).
    pub fn with_strategy(mut self, strategy: Strategy) -> MapRequest {
        self.strategy = strategy;
        self
    }

    /// Enables/disables the connected-subset optimization (Section 4.1).
    pub fn with_subsets(mut self, on: bool) -> MapRequest {
        self.use_subsets = on;
        self
    }

    /// Caps the total SAT conflicts exact engines may spend.
    pub fn with_conflict_budget(mut self, budget: Option<u64>) -> MapRequest {
        self.conflict_budget = budget;
        self
    }

    /// Caps the wall-clock time of the request. Exact searches (including
    /// a racing [`crate::Portfolio`]'s) stop cooperatively when it fires
    /// and the best verified result found so far is returned —
    /// `proved_optimal` only if the proof closed in time. Heuristic
    /// engines are fast and run to completion regardless.
    pub fn with_deadline(mut self, deadline: Duration) -> MapRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Declares an externally known achievable cost: engines only return
    /// results with cost **strictly below** it. Exact engines prune their
    /// search with it from the first solve; the [`crate::Portfolio`]
    /// engine additionally tightens it with its own heuristic pass and
    /// never falls back to a result at or above it.
    pub fn with_upper_bound(mut self, bound: Option<u64>) -> MapRequest {
        self.upper_bound = bound;
        self
    }

    /// Seeds randomized engines (the stochastic baseline).
    pub fn with_seed(mut self, seed: u64) -> MapRequest {
        self.seed = seed;
        self
    }

    /// Attaches a trace recorder: engines answering this request record
    /// their phase spans — the portfolio's race timeline, per-subset
    /// encode/minimize spans, per-window block solves — onto it, and the
    /// final [`crate::MapReport::trace`] carries the snapshot. Clones of
    /// the request share the same timeline. The recorder is *not* part
    /// of the request's cache identity: traced and untraced requests
    /// share solve-cache entries, and cached reports never carry a stale
    /// trace.
    ///
    /// ```
    /// use qxmap_arch::devices;
    /// use qxmap_circuit::paper_example;
    /// use qxmap_core::SpanRecorder;
    /// use qxmap_map::{Engine, MapRequest, Portfolio};
    ///
    /// let recorder = SpanRecorder::new();
    /// let request = MapRequest::new(paper_example(), devices::ibm_qx4())
    ///     .with_trace(recorder);
    /// let report = Portfolio::new().run(&request)?;
    /// let trace = report.trace.expect("traced request");
    /// assert!(trace.spans.iter().any(|s| s.path.starts_with("race")));
    /// # Ok::<(), qxmap_map::MapperError>(())
    /// ```
    pub fn with_trace(mut self, trace: SpanRecorder) -> MapRequest {
        self.trace = trace;
        self
    }

    /// The circuit to map.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The target device.
    pub fn device(&self) -> &CouplingMap {
        match &self.device {
            Some(device) => device,
            None => self
                .model
                .get()
                .expect("explicit-model requests always hold their model")
                .coupling_map(),
        }
    }

    /// The device/cost model every engine answers under — the single
    /// authority on per-edge costs, precomputed distances and the
    /// fingerprint that identifies the device in cache keys. Built on
    /// first access for uniform-model requests (then reused; cloning a
    /// request carries the built model along), already present for
    /// explicit-model ones.
    pub fn device_model(&self) -> &DeviceModel {
        self.model.get_or_init(|| {
            let device = self
                .device
                .clone()
                .expect("uniform-model requests always hold their device");
            DeviceModel::uniform(device, self.cost_model)
        })
    }

    /// The device model's content fingerprint — the device's identity in
    /// cache keys. Answered without building the distance matrices when
    /// the uniform model has not been needed yet, so a cache *hit* on a
    /// large device stays a sub-millisecond lookup.
    pub fn device_fingerprint(&self) -> u64 {
        match self.model.get() {
            Some(model) => model.fingerprint(),
            None => DeviceModel::uniform_fingerprint(self.device(), self.cost_model),
        }
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// The demanded guarantee level.
    pub fn guarantee(&self) -> Guarantee {
        self.guarantee
    }

    /// The permutation-site strategy for exact engines.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Whether the subset optimization is enabled.
    pub fn use_subsets(&self) -> bool {
        self.use_subsets
    }

    /// The exact engines' conflict budget.
    pub fn conflict_budget(&self) -> Option<u64> {
        self.conflict_budget
    }

    /// The wall-clock budget, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The externally known achievable cost, if any.
    pub fn upper_bound(&self) -> Option<u64> {
        self.upper_bound
    }

    /// The seed for randomized engines.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The attached trace recorder (disabled by default).
    pub fn trace(&self) -> &SpanRecorder {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;

    #[test]
    fn defaults_are_best_effort_with_subsets() {
        let req = MapRequest::new(Circuit::new(2), devices::ibm_qx4());
        assert_eq!(req.guarantee(), Guarantee::BestEffort);
        assert!(req.use_subsets());
        assert_eq!(req.conflict_budget(), None);
        assert_eq!(req.deadline(), None);
        assert_eq!(req.upper_bound(), None);
        assert_eq!(req.seed(), 0);
    }

    #[test]
    fn cost_model_rederives_the_uniform_model() {
        let req = MapRequest::new(Circuit::new(2), devices::ibm_qx4());
        assert_eq!(req.device_model().swap_cost(0, 1), Some(7));
        let req = req.with_cost_model(CostModel::bidirectional());
        assert_eq!(req.device_model().swap_cost(0, 1), Some(3));
    }

    #[test]
    fn explicit_model_wins_over_cost_model() {
        use qxmap_arch::DeviceModel;
        let model = DeviceModel::new(devices::ibm_qx4()).with_swap_cost(0, 1, 70);
        let req = MapRequest::for_model(Circuit::new(2), model.clone())
            .with_cost_model(CostModel::bidirectional());
        // The calibrated model keeps pricing the run.
        assert_eq!(req.device_model().swap_cost(0, 1), Some(70));
        assert_eq!(req.device_model().fingerprint(), model.fingerprint());
        assert_eq!(req.device().name(), "IBM QX4");
        // with_device_model is the builder-style equivalent.
        let req = MapRequest::new(Circuit::new(2), devices::ibm_qx2()).with_device_model(model);
        assert_eq!(req.device().name(), "IBM QX4");
        assert_eq!(req.device_model().swap_cost(0, 1), Some(70));
    }

    #[test]
    fn builders_compose() {
        let req = MapRequest::new(Circuit::new(2), devices::ibm_qx4())
            .with_guarantee(Guarantee::Optimal)
            .with_subsets(false)
            .with_conflict_budget(Some(10))
            .with_deadline(Duration::from_secs(1))
            .with_upper_bound(Some(4))
            .with_seed(3);
        assert_eq!(req.guarantee(), Guarantee::Optimal);
        assert!(!req.use_subsets());
        assert_eq!(req.conflict_budget(), Some(10));
        assert_eq!(req.deadline(), Some(Duration::from_secs(1)));
        assert_eq!(req.upper_bound(), Some(4));
        assert_eq!(req.seed(), 3);
    }
}
