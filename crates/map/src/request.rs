//! The unified mapping request.

use std::time::Duration;

use qxmap_arch::{CostModel, CouplingMap};
use qxmap_circuit::Circuit;
use qxmap_core::Strategy;

/// How strong a result the caller demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Guarantee {
    /// The result must carry a proof of minimality; engines error out when
    /// they cannot provide one (e.g. the device exceeds the exact method's
    /// regime).
    Optimal,
    /// Best result obtainable within the request's budgets; engines may
    /// fall back to heuristics and `proved_optimal` may be `false`.
    #[default]
    BestEffort,
}

/// Everything a mapping engine needs to answer one mapping question.
///
/// Built in builder style; every knob has a sensible default. The two
/// budgets compose: the conflict budget caps solver *work*, the deadline
/// caps *wall-clock* — whichever fires first ends the exact search, and
/// a best-effort engine then answers with the best result in hand:
///
/// ```
/// use std::time::Duration;
/// use qxmap_arch::devices;
/// use qxmap_circuit::paper_example;
/// use qxmap_map::{Guarantee, MapRequest};
///
/// let request = MapRequest::new(paper_example(), devices::ibm_qx4())
///     .with_guarantee(Guarantee::Optimal)
///     .with_conflict_budget(Some(50_000))
///     .with_deadline(Duration::from_millis(250))
///     .with_seed(7);
/// assert_eq!(request.device().num_qubits(), 5);
/// assert_eq!(request.deadline(), Some(Duration::from_millis(250)));
/// ```
#[derive(Debug, Clone)]
pub struct MapRequest {
    circuit: Circuit,
    device: CouplingMap,
    cost_model: CostModel,
    guarantee: Guarantee,
    strategy: Strategy,
    use_subsets: bool,
    conflict_budget: Option<u64>,
    deadline: Option<Duration>,
    upper_bound: Option<u64>,
    seed: u64,
}

impl MapRequest {
    /// A request with default settings: the paper's 7/4 cost model,
    /// [`Guarantee::BestEffort`], permutations before every gate, the
    /// Section 4.1 subset optimization enabled, no budgets, seed 0.
    pub fn new(circuit: Circuit, device: CouplingMap) -> MapRequest {
        MapRequest {
            circuit,
            device,
            cost_model: CostModel::default(),
            guarantee: Guarantee::default(),
            strategy: Strategy::default(),
            use_subsets: true,
            conflict_budget: None,
            deadline: None,
            upper_bound: None,
            seed: 0,
        }
    }

    /// Sets the cost accounting for inserted operations.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> MapRequest {
        self.cost_model = cost_model;
        self
    }

    /// Sets the demanded guarantee level.
    pub fn with_guarantee(mut self, guarantee: Guarantee) -> MapRequest {
        self.guarantee = guarantee;
        self
    }

    /// Sets the permutation-site strategy used by exact engines
    /// (Section 4.2 of the paper).
    pub fn with_strategy(mut self, strategy: Strategy) -> MapRequest {
        self.strategy = strategy;
        self
    }

    /// Enables/disables the connected-subset optimization (Section 4.1).
    pub fn with_subsets(mut self, on: bool) -> MapRequest {
        self.use_subsets = on;
        self
    }

    /// Caps the total SAT conflicts exact engines may spend.
    pub fn with_conflict_budget(mut self, budget: Option<u64>) -> MapRequest {
        self.conflict_budget = budget;
        self
    }

    /// Caps the wall-clock time of the request. Exact searches (including
    /// a racing [`crate::Portfolio`]'s) stop cooperatively when it fires
    /// and the best verified result found so far is returned —
    /// `proved_optimal` only if the proof closed in time. Heuristic
    /// engines are fast and run to completion regardless.
    pub fn with_deadline(mut self, deadline: Duration) -> MapRequest {
        self.deadline = Some(deadline);
        self
    }

    /// Declares an externally known achievable cost: engines only return
    /// results with cost **strictly below** it. Exact engines prune their
    /// search with it from the first solve; the [`crate::Portfolio`]
    /// engine additionally tightens it with its own heuristic pass and
    /// never falls back to a result at or above it.
    pub fn with_upper_bound(mut self, bound: Option<u64>) -> MapRequest {
        self.upper_bound = bound;
        self
    }

    /// Seeds randomized engines (the stochastic baseline).
    pub fn with_seed(mut self, seed: u64) -> MapRequest {
        self.seed = seed;
        self
    }

    /// The circuit to map.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The target device.
    pub fn device(&self) -> &CouplingMap {
        &self.device
    }

    /// The cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// The demanded guarantee level.
    pub fn guarantee(&self) -> Guarantee {
        self.guarantee
    }

    /// The permutation-site strategy for exact engines.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Whether the subset optimization is enabled.
    pub fn use_subsets(&self) -> bool {
        self.use_subsets
    }

    /// The exact engines' conflict budget.
    pub fn conflict_budget(&self) -> Option<u64> {
        self.conflict_budget
    }

    /// The wall-clock budget, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The externally known achievable cost, if any.
    pub fn upper_bound(&self) -> Option<u64> {
        self.upper_bound
    }

    /// The seed for randomized engines.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::devices;

    #[test]
    fn defaults_are_best_effort_with_subsets() {
        let req = MapRequest::new(Circuit::new(2), devices::ibm_qx4());
        assert_eq!(req.guarantee(), Guarantee::BestEffort);
        assert!(req.use_subsets());
        assert_eq!(req.conflict_budget(), None);
        assert_eq!(req.deadline(), None);
        assert_eq!(req.upper_bound(), None);
        assert_eq!(req.seed(), 0);
    }

    #[test]
    fn builders_compose() {
        let req = MapRequest::new(Circuit::new(2), devices::ibm_qx4())
            .with_guarantee(Guarantee::Optimal)
            .with_subsets(false)
            .with_conflict_budget(Some(10))
            .with_deadline(Duration::from_secs(1))
            .with_upper_bound(Some(4))
            .with_seed(3);
        assert_eq!(req.guarantee(), Guarantee::Optimal);
        assert!(!req.use_subsets());
        assert_eq!(req.conflict_budget(), Some(10));
        assert_eq!(req.deadline(), Some(Duration::from_secs(1)));
        assert_eq!(req.upper_bound(), Some(4));
        assert_eq!(req.seed(), 3);
    }
}
