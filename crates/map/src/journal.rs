//! The crash-safe cache journal.
//!
//! [`crate::SolveCache::export_snapshot`] persists the warm working set,
//! but only when somebody *asks* — a daemon that dies by `kill -9` (or a
//! panic, or an OOM kill) between snapshots throws away every solve since
//! the last one. The journal closes that gap: an append-only file of
//! checksummed cache entries, written by a background thread off the
//! response path, so a crash loses at most the records still sitting in
//! the writer's queue.
//!
//! ## File format
//!
//! ```text
//! "QXJOURNL"  [u32 version]                      — 12-byte header
//! [u32 len] [u64 checksum] [payload: len bytes]  — record, repeated
//! ```
//!
//! The payload reuses the QXSNAPSH entry encoding verbatim — cache key,
//! canonical-to-original correspondence, report — so the journal and the
//! snapshot can never drift apart structurally; the checksum is the same
//! FNV-1a the snapshot trailer uses, but sealed *per record*.
//!
//! ## Replay semantics
//!
//! Unlike a snapshot import (all-or-nothing: one flipped bit rejects the
//! whole file), journal replay is per-record: a record whose checksum or
//! decode fails is skipped and counted in [`JournalReplay::rejected`],
//! and replay continues at the next record. A record whose *length* runs
//! past the end of the file is the torn tail an interrupted append
//! leaves behind — replay stops there, flags [`JournalReplay::torn`],
//! and [`JournalReplay::bytes_consumed`] marks the last byte of intact
//! data. That offset is also the tail-following cursor: a warm-sharing
//! replica re-reads the file from its previous `bytes_consumed`, feeds
//! the new bytes to [`replay_records`], and admits whatever complete
//! records have landed since.
//!
//! ## Compaction
//!
//! An append-only file grows without bound while the cache it shadows is
//! a bounded LRU. After every `compact_after` appended records the
//! writer thread rewrites the journal from the cache's current contents
//! (write-temp-then-rename, so a crash mid-compaction leaves the old
//! file intact) and resumes appending.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use crate::cache::{CacheKey, SolveCache};
use crate::report::MapReport;
use crate::snapshot::{self, Reader, SnapshotError, Writer};

/// The journal file's magic prefix.
pub const JOURNAL_MAGIC: &[u8; 8] = b"QXJOURNL";

/// Version of the journal format this build writes and replays.
pub const JOURNAL_VERSION: u32 = 1;

/// Header length in bytes: magic plus version word.
const HEADER_LEN: u64 = 12;

/// What a journal replay admitted, skipped and left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalReplay {
    /// Records decoded, validated and inserted into the cache.
    pub admitted: usize,
    /// Records individually rejected — checksum mismatch, decode error
    /// or invalid correspondence — and skipped without aborting replay.
    pub rejected: usize,
    /// The file ended mid-record (the torn tail of an interrupted
    /// append); everything before `bytes_consumed` was still replayed.
    pub torn: bool,
    /// Offset one past the last complete record — the cursor a
    /// tail-following replica resumes from, and the length
    /// [`Journal::attach`] truncates to before appending.
    pub bytes_consumed: u64,
    /// The existing file's header was unusable (bad magic or an
    /// unsupported version) and [`Journal::attach`] reinitialized it.
    pub reset: bool,
}

/// Live counters of an attached journal writer — what the daemon's
/// `metrics` response reports as journal health alongside the boot-time
/// [`JournalReplay`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (and flushed) since attach.
    pub appended: u64,
    /// Snapshot compactions of the journal file since attach.
    pub compactions: u64,
    /// Filesystem errors the writer hit; after the first, the journal
    /// stops writing (the error also surfaces via [`Journal::finish`]).
    pub write_errors: u64,
}

#[derive(Default)]
struct StatsCells {
    appended: AtomicU64,
    compactions: AtomicU64,
    write_errors: AtomicU64,
}

/// An event on the journal writer's queue.
pub(crate) enum Event {
    /// A freshly stored cache entry to append. The key is boxed so the
    /// queue's enum stays small next to the fieldless `Shutdown`.
    Entry {
        key: Box<CacheKey>,
        canon_to_original: Vec<usize>,
        report: Arc<MapReport>,
    },
    /// Drain what is queued, then exit the writer thread.
    Shutdown,
}

/// A handle to the background journal writer attached to a
/// [`SolveCache`]. Dropping it (or calling [`Journal::finish`]) detaches
/// the cache, drains the queue and joins the thread.
pub struct Journal {
    cache: &'static SolveCache,
    tx: mpsc::Sender<Event>,
    thread: Option<thread::JoinHandle<io::Result<()>>>,
    stats: Arc<StatsCells>,
}

impl Journal {
    /// Replays `path` into `cache` (tolerantly — see [`replay_journal`]),
    /// truncates any torn tail, attaches a background writer so every
    /// subsequent [`SolveCache::insert`] is appended, and returns the
    /// handle plus what the replay admitted. A missing or empty file is
    /// created with a fresh header; an existing file with a bad header
    /// is reinitialized and reported via [`JournalReplay::reset`].
    ///
    /// The cache reference is `'static` because the writer thread (and
    /// the cache's own journal hook) outlive the caller's frame — the
    /// serving daemon passes [`SolveCache::shared`]; tests leak a
    /// private instance.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors opening, truncating or creating the
    /// journal file.
    pub fn attach(
        cache: &'static SolveCache,
        path: &Path,
        compact_after: usize,
    ) -> io::Result<(Journal, JournalReplay)> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let replay = if bytes.is_empty() {
            None
        } else {
            replay_journal(cache, &bytes).ok()
        };
        let replay = match replay {
            Some(replay) => replay,
            None => {
                // Fresh file, or an existing one whose header is not
                // ours: start over. (A bad header means the file was
                // never a journal; per-record damage never lands here.)
                fs::write(path, header_bytes())?;
                JournalReplay {
                    bytes_consumed: HEADER_LEN,
                    reset: !bytes.is_empty(),
                    ..JournalReplay::default()
                }
            }
        };
        // Drop the torn tail (if any) so appended records extend intact
        // data instead of burying themselves behind a partial record.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(replay.bytes_consumed)?;
        drop(file);
        let file = OpenOptions::new().append(true).open(path)?;

        let (tx, rx) = mpsc::channel::<Event>();
        let path = path.to_path_buf();
        let stats = Arc::new(StatsCells::default());
        let cells = Arc::clone(&stats);
        let thread = thread::Builder::new()
            .name("qxmap-journal".into())
            .spawn(move || writer_loop(cache, file, &path, compact_after, &rx, &cells))?;
        cache.set_journal(Some(tx.clone()));
        Ok((
            Journal {
                cache,
                tx,
                thread: Some(thread),
                stats,
            },
            replay,
        ))
    }

    /// The writer's live health counters (relaxed reads — one `metrics`
    /// response may straddle an append, never torn values).
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.stats.appended.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            write_errors: self.stats.write_errors.load(Ordering::Relaxed),
        }
    }

    /// Detaches the cache, drains every queued record to disk, joins the
    /// writer thread and surfaces any write error it hit.
    ///
    /// # Errors
    ///
    /// The first filesystem error the writer thread encountered, if any.
    pub fn finish(mut self) -> io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        let Some(thread) = self.thread.take() else {
            return Ok(());
        };
        self.cache.set_journal(None);
        let _ = self.tx.send(Event::Shutdown);
        thread
            .join()
            .map_err(|_| io::Error::other("journal writer panicked"))?
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("attached", &self.thread.is_some())
            .finish()
    }
}

/// The writer thread: append (and flush) one record per event, compact
/// after every `compact_after` appends, and keep draining — but stop
/// writing — after the first filesystem error, which is reported through
/// [`Journal::finish`].
fn writer_loop(
    cache: &'static SolveCache,
    mut file: File,
    path: &Path,
    compact_after: usize,
    rx: &mpsc::Receiver<Event>,
    stats: &StatsCells,
) -> io::Result<()> {
    let compact_after = compact_after.max(1);
    let mut since_compact = 0usize;
    let mut failed: Option<io::Error> = None;
    while let Ok(event) = rx.recv() {
        let Event::Entry {
            key,
            canon_to_original,
            report,
        } = event
        else {
            break;
        };
        if failed.is_some() {
            continue;
        }
        let record = encode_record(&key, &canon_to_original, &report);
        // write_all + flush per record: once the write returns, the
        // record is in the OS page cache and survives a `kill -9` of
        // this process (machine-level durability is the snapshot's job).
        if let Err(e) = file.write_all(&record).and_then(|()| file.flush()) {
            stats.write_errors.fetch_add(1, Ordering::Relaxed);
            failed = Some(e);
            continue;
        }
        stats.appended.fetch_add(1, Ordering::Relaxed);
        since_compact += 1;
        if since_compact >= compact_after {
            match compact(cache, path) {
                Ok(compacted) => {
                    file = compacted;
                    since_compact = 0;
                    stats.compactions.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    stats.write_errors.fetch_add(1, Ordering::Relaxed);
                    failed = Some(e);
                }
            }
        }
    }
    match failed {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Rewrites the journal as a header plus one record per *current* cache
/// entry (temp-then-rename, crash-safe), returning the reopened
/// append handle.
fn compact(cache: &SolveCache, path: &Path) -> io::Result<File> {
    let mut buf = header_bytes();
    for (key, canon_to_original, report, _) in cache.export_entries() {
        buf.extend_from_slice(&encode_record(&key, &canon_to_original, &report));
    }
    let tmp = path.with_extension(format!("compact.{}", std::process::id()));
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)?;
    OpenOptions::new().append(true).open(path)
}

fn header_bytes() -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN as usize);
    buf.extend_from_slice(JOURNAL_MAGIC);
    buf.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
    buf
}

/// One journal record: length-prefixed QXSNAPSH entry payload sealed by
/// a per-record FNV-1a checksum.
fn encode_record(key: &CacheKey, canon_to_original: &[usize], report: &MapReport) -> Vec<u8> {
    let mut w = Writer::new();
    key.write(&mut w);
    w.usizes(canon_to_original);
    snapshot::write_report(&mut w, report);
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(
        &u32::try_from(payload.len())
            .expect("record < 4 GiB")
            .to_le_bytes(),
    );
    out.extend_from_slice(&snapshot::checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Replays a whole journal file (header included) into `cache`. Damaged
/// records are rejected individually; only a damaged *header* rejects
/// the file as a whole.
///
/// # Errors
///
/// [`SnapshotError::BadMagic`], [`SnapshotError::VersionMismatch`] or
/// [`SnapshotError::Truncated`] when the 12-byte header is not an intact
/// journal header. Everything after the header is handled tolerantly and
/// reported through the returned [`JournalReplay`].
pub fn replay_journal(cache: &SolveCache, bytes: &[u8]) -> Result<JournalReplay, SnapshotError> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(if JOURNAL_MAGIC.starts_with(bytes) {
            SnapshotError::Truncated
        } else {
            SnapshotError::BadMagic
        });
    }
    if &bytes[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let found = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if found != JOURNAL_VERSION {
        return Err(SnapshotError::VersionMismatch {
            found,
            supported: JOURNAL_VERSION,
        });
    }
    let mut replay = replay_records(cache, &bytes[HEADER_LEN as usize..]);
    replay.bytes_consumed += HEADER_LEN;
    Ok(replay)
}

/// Replays a headerless run of journal records — the tail-following
/// entry point: a replica that already consumed a prefix of the file
/// feeds just the new bytes here and adds the returned
/// [`JournalReplay::bytes_consumed`] to its cursor.
pub fn replay_records(cache: &SolveCache, bytes: &[u8]) -> JournalReplay {
    let mut replay = JournalReplay::default();
    let mut at = 0usize;
    while at < bytes.len() {
        // A record is [u32 len][u64 checksum][payload]; anything that
        // runs past the end of the buffer — including a length field
        // damaged into a huge value — is indistinguishable from an
        // interrupted append, so it is the torn tail and replay stops.
        let Some(header) = bytes.get(at..at + 12) else {
            replay.torn = true;
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let declared = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let Some(payload) = bytes.get(at + 12..at + 12 + len) else {
            replay.torn = true;
            break;
        };
        at += 12 + len;
        replay.bytes_consumed = at as u64;
        if snapshot::checksum(payload) != declared {
            replay.rejected += 1;
            continue;
        }
        match decode_payload(payload) {
            Ok((key, canon_to_original, report)) => {
                match cache.admit_decoded(key, canon_to_original, Arc::new(report)) {
                    Ok(true) => replay.admitted += 1,
                    // The key is already live (snapshot import beat us,
                    // or a compacted record repeats an append): the live
                    // entry wins, and the record is neither new nor bad.
                    Ok(false) => {}
                    Err(_) => replay.rejected += 1,
                }
            }
            Err(_) => replay.rejected += 1,
        }
    }
    replay
}

/// Decodes one record payload: key, correspondence, report — rejecting
/// trailing bytes (a checksummed payload is exactly one entry).
fn decode_payload(payload: &[u8]) -> Result<(CacheKey, Vec<usize>, MapReport), SnapshotError> {
    let mut r = Reader::new(payload);
    let key = CacheKey::read(&mut r)?;
    let canon_to_original = r.usizes()?;
    let report = snapshot::read_report(&mut r)?;
    if r.remaining() != 0 {
        return Err(SnapshotError::Corrupted("trailing bytes after record"));
    }
    Ok((key, canon_to_original, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, HeuristicEngine};
    use crate::request::MapRequest;
    use qxmap_arch::devices;
    use qxmap_circuit::paper_example;
    use std::path::PathBuf;

    fn leaked(capacity: usize) -> &'static SolveCache {
        Box::leak(Box::new(SolveCache::with_capacity(capacity)))
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("qxmap-journal-{}-{name}", std::process::id()))
    }

    /// Solves the paper example under `seed` and inserts it, giving each
    /// seed its own cache key (and so its own journal record).
    fn insert_seeded(cache: &SolveCache, seed: u64) {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4()).with_seed(seed);
        let engine = HeuristicEngine::naive();
        let report = engine.run(&request).expect("mappable");
        cache.insert(&engine.cache_signature(), &request, &report);
    }

    fn lookup_seeded(cache: &SolveCache, seed: u64) -> Option<MapReport> {
        let request = MapRequest::new(paper_example(), devices::ibm_qx4()).with_seed(seed);
        cache.lookup(&HeuristicEngine::naive().cache_signature(), &request)
    }

    /// Byte ranges of each record's (start, payload_len) in `bytes`.
    fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut at = HEADER_LEN as usize;
        while at + 12 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            if at + 12 + len > bytes.len() {
                break;
            }
            spans.push((at, len));
            at += 12 + len;
        }
        spans
    }

    #[test]
    fn appends_replay_into_a_fresh_cache() {
        let path = temp("round-trip");
        let _ = fs::remove_file(&path);
        let source = leaked(8);
        let (journal, replay) = Journal::attach(source, &path, 1024).unwrap();
        assert_eq!(
            replay,
            JournalReplay {
                bytes_consumed: HEADER_LEN,
                ..JournalReplay::default()
            }
        );
        for seed in 0..3 {
            insert_seeded(source, seed);
        }
        journal.finish().unwrap();

        let restored = leaked(8);
        let replay = replay_journal(restored, &fs::read(&path).unwrap()).unwrap();
        assert_eq!(
            (replay.admitted, replay.rejected, replay.torn),
            (3, 0, false)
        );
        assert_eq!(replay.bytes_consumed, fs::metadata(&path).unwrap().len());
        for seed in 0..3 {
            let hit = lookup_seeded(restored, seed).expect("replayed entry hits");
            assert!(hit.served_from_cache);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_the_intact_prefix_and_reattach_truncates_it() {
        let path = temp("torn");
        let _ = fs::remove_file(&path);
        let source = leaked(8);
        let (journal, _) = Journal::attach(source, &path, 1024).unwrap();
        insert_seeded(source, 0);
        insert_seeded(source, 1);
        journal.finish().unwrap();

        // Chop into the second record: the first still replays, the torn
        // tail is flagged, and the cursor stops at the record boundary.
        let bytes = fs::read(&path).unwrap();
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 2);
        let boundary = spans[1].0;
        fs::write(&path, &bytes[..boundary + 7]).unwrap();
        let restored = leaked(8);
        let replay = replay_journal(restored, &fs::read(&path).unwrap()).unwrap();
        assert_eq!(
            (replay.admitted, replay.rejected, replay.torn),
            (1, 0, true)
        );
        assert_eq!(replay.bytes_consumed, boundary as u64);
        assert!(lookup_seeded(restored, 0).is_some());
        assert!(lookup_seeded(restored, 1).is_none());

        // Re-attaching truncates the partial record, so new appends land
        // on intact data and the whole file replays cleanly again.
        let recovered = leaked(8);
        let (journal, replay) = Journal::attach(recovered, &path, 1024).unwrap();
        assert!(replay.torn);
        insert_seeded(recovered, 2);
        journal.finish().unwrap();
        let replay = replay_journal(leaked(8), &fs::read(&path).unwrap()).unwrap();
        assert_eq!((replay.admitted, replay.torn), (2, false));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn a_corrupt_record_is_rejected_alone() {
        let path = temp("corrupt");
        let _ = fs::remove_file(&path);
        let source = leaked(8);
        let (journal, _) = Journal::attach(source, &path, 1024).unwrap();
        for seed in 0..3 {
            insert_seeded(source, seed);
        }
        journal.finish().unwrap();

        // Flip one payload byte in the middle record: unlike a snapshot
        // import, the damage stays contained — records 1 and 3 admit.
        let mut bytes = fs::read(&path).unwrap();
        let spans = record_spans(&bytes);
        assert_eq!(spans.len(), 3);
        let (start, len) = spans[1];
        bytes[start + 12 + len / 2] ^= 0xff;
        let restored = leaked(8);
        let replay = replay_journal(restored, &bytes).unwrap();
        assert_eq!(
            (replay.admitted, replay.rejected, replay.torn),
            (2, 1, false)
        );
        assert_eq!(replay.bytes_consumed, bytes.len() as u64);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn compaction_bounds_the_file_to_the_live_working_set() {
        let path = temp("compact");
        let _ = fs::remove_file(&path);
        // Capacity 2, compact after every 2 appends: the file tracks the
        // LRU's survivors instead of the full append history.
        let source = leaked(2);
        let (journal, _) = Journal::attach(source, &path, 2).unwrap();
        for seed in 0..6 {
            insert_seeded(source, seed);
        }
        journal.finish().unwrap();
        assert_eq!(source.stats().entries, 2);

        let restored = leaked(8);
        let replay = replay_journal(restored, &fs::read(&path).unwrap()).unwrap();
        assert_eq!(
            (replay.admitted, replay.rejected, replay.torn),
            (2, 0, false)
        );
        assert!(lookup_seeded(restored, 4).is_some());
        assert!(lookup_seeded(restored, 5).is_some());
        assert!(
            lookup_seeded(restored, 0).is_none(),
            "evicted, so compacted away"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn a_foreign_file_is_reset_not_appended_to() {
        let path = temp("foreign");
        fs::write(&path, b"definitely not a journal").unwrap();
        let source = leaked(8);
        let (journal, replay) = Journal::attach(source, &path, 1024).unwrap();
        assert!(replay.reset);
        assert_eq!(replay.admitted, 0);
        insert_seeded(source, 0);
        journal.finish().unwrap();
        let replay = replay_journal(leaked(8), &fs::read(&path).unwrap()).unwrap();
        assert_eq!(
            (replay.admitted, replay.rejected, replay.torn),
            (1, 0, false)
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_records_resumes_from_a_cursor() {
        let path = temp("tail-follow");
        let _ = fs::remove_file(&path);
        let source = leaked(8);
        let (journal, _) = Journal::attach(source, &path, 1024).unwrap();
        insert_seeded(source, 0);
        // The append is asynchronous — wait for the writer to land it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while fs::metadata(&path).unwrap().len() <= HEADER_LEN {
            assert!(std::time::Instant::now() < deadline, "append never landed");
            thread::sleep(std::time::Duration::from_millis(2));
        }
        // A follower replays the file, remembers its cursor…
        let follower = leaked(8);
        let first = replay_journal(follower, &fs::read(&path).unwrap()).unwrap();
        assert_eq!(first.admitted, 1);
        // …the primary keeps appending…
        insert_seeded(source, 1);
        journal.finish().unwrap();
        // …and the follower admits just the new bytes.
        let bytes = fs::read(&path).unwrap();
        let tail = replay_records(follower, &bytes[first.bytes_consumed as usize..]);
        assert_eq!((tail.admitted, tail.torn), (1, false));
        assert_eq!(
            first.bytes_consumed + tail.bytes_consumed,
            bytes.len() as u64
        );
        assert!(lookup_seeded(follower, 1).is_some());
        let _ = fs::remove_file(&path);
    }
}
