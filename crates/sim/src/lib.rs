//! # qxmap-sim
//!
//! A statevector simulator used to *verify* that mapped circuits are
//! functionally equivalent to their originals — a guarantee the paper's
//! construction provides by design but never machine-checks. Every mapping
//! produced by `qxmap-core` and `qxmap-heuristic` is validated against
//! this simulator in the workspace's test suites.
//!
//! * [`Complex`] — minimal complex arithmetic (no external dependency).
//! * [`StateVec`] — a `2ⁿ`-amplitude state with single-qubit / CNOT / SWAP
//!   application.
//! * [`run`] — executes a circuit on an initial state.
//! * [`equivalent_unitaries`] — unitary equivalence up to global phase.
//! * [`mapped_equivalent`] — layout-aware equivalence between an original
//!   logical circuit and its mapped physical realization.
//! * [`Unitary`] — dense matrix extraction with unitarity self-checks and
//!   Hilbert–Schmidt fidelity.
//!
//! ```
//! use qxmap_circuit::Circuit;
//! use qxmap_sim::equivalent_unitaries;
//!
//! // H·H = I.
//! let mut a = Circuit::new(1);
//! a.h(0);
//! a.h(0);
//! let identity = Circuit::new(1);
//! assert!(equivalent_unitaries(&a, &identity, 1e-9).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod equiv;
mod gates;
mod state;
mod unitary;

pub use complex::Complex;
pub use equiv::{equivalent_unitaries, mapped_equivalent};
pub use gates::matrix;
pub use state::{run, NonUnitaryError, StateVec};
pub use unitary::Unitary;
