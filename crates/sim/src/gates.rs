//! Canonical 2×2 gate matrices.

use qxmap_circuit::OneQubitKind;

use crate::complex::Complex;

/// The unitary matrix of a single-qubit gate kind, row-major.
///
/// `U(θ, φ, λ)` uses IBM's `u3` convention
/// `[[cos(θ/2), −e^{iλ}·sin(θ/2)], [e^{iφ}·sin(θ/2), e^{i(φ+λ)}·cos(θ/2)]]`,
/// under which `U(π/2, 0, π)` is *exactly* the Hadamard (no global-phase
/// residue), so circuits round-tripped through QASM compare cleanly.
pub fn matrix(kind: OneQubitKind) -> [[Complex; 2]; 2] {
    let o = Complex::one;
    let z = Complex::zero;
    let i = Complex::i;
    match kind {
        OneQubitKind::I => [[o(), z()], [z(), o()]],
        OneQubitKind::X => [[z(), o()], [o(), z()]],
        OneQubitKind::Y => [[z(), -i()], [i(), z()]],
        OneQubitKind::Z => [[o(), z()], [z(), -o()]],
        OneQubitKind::H => {
            let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
            [[h, h], [h, -h]]
        }
        OneQubitKind::S => [[o(), z()], [z(), i()]],
        OneQubitKind::Sdg => [[o(), z()], [z(), -i()]],
        OneQubitKind::T => [
            [o(), z()],
            [z(), Complex::from_angle(std::f64::consts::FRAC_PI_4)],
        ],
        OneQubitKind::Tdg => [
            [o(), z()],
            [z(), Complex::from_angle(-std::f64::consts::FRAC_PI_4)],
        ],
        OneQubitKind::Rx(t) => {
            let c = Complex::new((t / 2.0).cos(), 0.0);
            let s = Complex::new(0.0, -(t / 2.0).sin());
            [[c, s], [s, c]]
        }
        OneQubitKind::Ry(t) => {
            let c = Complex::new((t / 2.0).cos(), 0.0);
            let s = Complex::new((t / 2.0).sin(), 0.0);
            [[c, -s], [s, c]]
        }
        OneQubitKind::Rz(t) => [
            [Complex::from_angle(-t / 2.0), z()],
            [z(), Complex::from_angle(t / 2.0)],
        ],
        OneQubitKind::Phase(l) => [[o(), z()], [z(), Complex::from_angle(l)]],
        OneQubitKind::U(t, p, l) => {
            let c = (t / 2.0).cos();
            let s = (t / 2.0).sin();
            [
                [Complex::new(c, 0.0), -(Complex::from_angle(l).scale(s))],
                [
                    Complex::from_angle(p).scale(s),
                    Complex::from_angle(p + l).scale(c),
                ],
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_unitary(m: [[Complex; 2]; 2]) -> bool {
        // M · M† = I
        let mut prod = [[Complex::zero(); 2]; 2];
        for r in 0..2 {
            for c in 0..2 {
                for (&a, &b) in m[r].iter().zip(&m[c]) {
                    prod[r][c] += a * b.conj();
                }
            }
        }
        prod[0][0].approx_eq(Complex::one(), 1e-12)
            && prod[1][1].approx_eq(Complex::one(), 1e-12)
            && prod[0][1].approx_eq(Complex::zero(), 1e-12)
            && prod[1][0].approx_eq(Complex::zero(), 1e-12)
    }

    #[test]
    fn all_matrices_are_unitary() {
        let kinds = [
            OneQubitKind::I,
            OneQubitKind::X,
            OneQubitKind::Y,
            OneQubitKind::Z,
            OneQubitKind::H,
            OneQubitKind::S,
            OneQubitKind::Sdg,
            OneQubitKind::T,
            OneQubitKind::Tdg,
            OneQubitKind::Rx(0.7),
            OneQubitKind::Ry(-1.3),
            OneQubitKind::Rz(2.2),
            OneQubitKind::Phase(0.4),
            OneQubitKind::U(0.5, 1.5, -2.5),
        ];
        for k in kinds {
            assert!(is_unitary(matrix(k)), "{k:?} is not unitary");
        }
    }

    #[test]
    fn u3_special_cases() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // U(π/2, 0, π) = H exactly.
        let u = matrix(OneQubitKind::U(FRAC_PI_2, 0.0, PI));
        let h = matrix(OneQubitKind::H);
        for r in 0..2 {
            for c in 0..2 {
                assert!(u[r][c].approx_eq(h[r][c], 1e-12), "H mismatch at {r}{c}");
            }
        }
        // U(π, 0, π) = X exactly.
        let u = matrix(OneQubitKind::U(PI, 0.0, PI));
        let x = matrix(OneQubitKind::X);
        for r in 0..2 {
            for c in 0..2 {
                assert!(u[r][c].approx_eq(x[r][c], 1e-12), "X mismatch at {r}{c}");
            }
        }
        // U(0, 0, λ) = Phase(λ).
        let u = matrix(OneQubitKind::U(0.0, 0.0, 0.9));
        let p = matrix(OneQubitKind::Phase(0.9));
        for r in 0..2 {
            for c in 0..2 {
                assert!(u[r][c].approx_eq(p[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn inverses_multiply_to_identity() {
        for k in [
            OneQubitKind::S,
            OneQubitKind::T,
            OneQubitKind::Rx(0.3),
            OneQubitKind::U(0.4, 0.9, -0.2),
        ] {
            let m = matrix(k);
            let inv = matrix(k.inverse());
            let mut prod = [[Complex::zero(); 2]; 2];
            for r in 0..2 {
                for c in 0..2 {
                    for j in 0..2 {
                        prod[r][c] += inv[r][j] * m[j][c];
                    }
                }
            }
            // Equal to identity up to global phase: off-diagonals vanish and
            // diagonals match each other.
            assert!(prod[0][1].approx_eq(Complex::zero(), 1e-12), "{k:?}");
            assert!(prod[1][0].approx_eq(Complex::zero(), 1e-12), "{k:?}");
            assert!(prod[0][0].approx_eq(prod[1][1], 1e-12), "{k:?}");
            assert!((prod[0][0].norm() - 1.0).abs() < 1e-12, "{k:?}");
        }
    }
}
