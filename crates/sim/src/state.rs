//! Statevector representation and circuit execution.

use std::error::Error;
use std::fmt;

use qxmap_circuit::{Circuit, Gate};

use crate::complex::Complex;
use crate::gates::matrix;

/// Error: a non-unitary element (measurement) was executed on a pure
/// statevector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonUnitaryError {
    position: usize,
}

impl fmt::Display for NonUnitaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate {} is a measurement; statevector execution is unitary-only",
            self.position
        )
    }
}

impl Error for NonUnitaryError {}

/// A `2ⁿ`-amplitude pure state. Qubit `q`'s bit in the amplitude index is
/// `1 << q` (little-endian).
///
/// ```
/// use qxmap_sim::StateVec;
/// let s = StateVec::basis(2, 0b10); // |q1=1, q0=0⟩
/// assert_eq!(s.amplitude(2).re, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVec {
    num_qubits: usize,
    amps: Vec<Complex>,
}

impl StateVec {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 24` (16 M amplitudes).
    pub fn zero(num_qubits: usize) -> StateVec {
        StateVec::basis(num_qubits, 0)
    }

    /// A computational basis state.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 24` or `index >= 2^num_qubits`.
    pub fn basis(num_qubits: usize, index: usize) -> StateVec {
        assert!(num_qubits <= 24, "statevector too large");
        let size = 1usize << num_qubits;
        assert!(index < size, "basis index out of range");
        let mut amps = vec![Complex::zero(); size];
        amps[index] = Complex::one();
        StateVec { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn amplitude(&self, i: usize) -> Complex {
        self.amps[i]
    }

    /// All amplitudes.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// `Σ|aᵢ|²` (1.0 for any valid evolution).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Applies a single-qubit matrix to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_one(&mut self, m: [[Complex; 2]; 2], q: usize) {
        assert!(q < self.num_qubits);
        let bit = 1usize << q;
        for base in 0..self.amps.len() {
            if base & bit != 0 {
                continue;
            }
            let a0 = self.amps[base];
            let a1 = self.amps[base | bit];
            self.amps[base] = m[0][0] * a0 + m[0][1] * a1;
            self.amps[base | bit] = m[1][0] * a0 + m[1][1] * a1;
        }
    }

    /// Applies CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_cx(&mut self, control: usize, target: usize) {
        assert!(control < self.num_qubits && target < self.num_qubits);
        assert_ne!(control, target);
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for base in 0..self.amps.len() {
            if base & cbit != 0 && base & tbit == 0 {
                self.amps.swap(base, base | tbit);
            }
        }
    }

    /// Applies SWAP between two qubits.
    ///
    /// # Panics
    ///
    /// Panics if the qubits coincide or are out of range.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.num_qubits && b < self.num_qubits);
        assert_ne!(a, b);
        let abit = 1usize << a;
        let bbit = 1usize << b;
        for base in 0..self.amps.len() {
            if base & abit != 0 && base & bbit == 0 {
                self.amps.swap(base, base ^ abit ^ bbit);
            }
        }
    }

    /// Fidelity-style overlap `|⟨self|other⟩|`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn overlap(&self, other: &StateVec) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let mut inner = Complex::zero();
        for (a, b) in self.amps.iter().zip(&other.amps) {
            inner += a.conj() * *b;
        }
        inner.norm()
    }
}

/// Runs `circuit` on `state` (barriers are no-ops).
///
/// # Errors
///
/// Returns [`NonUnitaryError`] if the circuit contains a measurement.
///
/// # Panics
///
/// Panics if the circuit uses more qubits than the state has.
pub fn run(circuit: &Circuit, mut state: StateVec) -> Result<StateVec, NonUnitaryError> {
    assert!(circuit.num_qubits() <= state.num_qubits());
    for (position, gate) in circuit.gates().iter().enumerate() {
        match gate {
            Gate::One { kind, qubit } => state.apply_one(matrix(*kind), *qubit),
            Gate::Cnot { control, target } => state.apply_cx(*control, *target),
            Gate::Swap { a, b } => state.apply_swap(*a, *b),
            Gate::Barrier(_) => {}
            Gate::Measure { .. } => return Err(NonUnitaryError { position }),
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_circuit::OneQubitKind;

    #[test]
    fn bell_state() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let s = run(&c, StateVec::zero(2)).unwrap();
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(s.amplitude(0b00).approx_eq(Complex::new(r, 0.0), 1e-12));
        assert!(s.amplitude(0b11).approx_eq(Complex::new(r, 0.0), 1e-12));
        assert!(s.amplitude(0b01).approx_eq(Complex::zero(), 1e-12));
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cnot_truth_table() {
        for (input, expected) in [(0b00, 0b00), (0b01, 0b11), (0b10, 0b10), (0b11, 0b01)] {
            // qubit 0 = control (low bit), qubit 1 = target.
            let mut s = StateVec::basis(2, input);
            s.apply_cx(0, 1);
            assert!(
                s.amplitude(expected).approx_eq(Complex::one(), 1e-12),
                "input {input:02b}"
            );
        }
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut s = StateVec::basis(3, 0b001);
        s.apply_swap(0, 2);
        assert!(s.amplitude(0b100).approx_eq(Complex::one(), 1e-12));
        // SWAP = 3 CNOTs.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        c.cx(1, 0);
        c.cx(0, 1);
        for b in 0..4 {
            let via_cnots = run(&c, StateVec::basis(2, b)).unwrap();
            let mut direct = StateVec::basis(2, b);
            direct.apply_swap(0, 1);
            assert!(via_cnots.overlap(&direct) > 1.0 - 1e-12, "basis {b}");
        }
    }

    #[test]
    fn reversed_cnot_via_hadamards() {
        // H⊗H · CX(0→1) · H⊗H = CX(1→0).
        let mut via_h = Circuit::new(2);
        via_h.h(0);
        via_h.h(1);
        via_h.cx(0, 1);
        via_h.h(0);
        via_h.h(1);
        let mut direct = Circuit::new(2);
        direct.cx(1, 0);
        for b in 0..4 {
            let a = run(&via_h, StateVec::basis(2, b)).unwrap();
            let d = run(&direct, StateVec::basis(2, b)).unwrap();
            assert!(a.overlap(&d) > 1.0 - 1e-12, "basis {b}");
        }
    }

    #[test]
    fn norm_is_preserved() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.t(1);
        c.cx(0, 2);
        c.one(OneQubitKind::U(0.3, 1.1, -0.4), 1);
        c.cx(2, 1);
        let s = run(&c, StateVec::zero(3)).unwrap();
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_is_rejected() {
        let mut c = Circuit::with_clbits(1, 1);
        c.measure(0, 0);
        let err = run(&c, StateVec::zero(1)).unwrap_err();
        assert!(err.to_string().contains("measurement"));
    }

    #[test]
    fn circuit_on_larger_state() {
        // A 2-qubit circuit may run on a 3-qubit state (idle high qubit).
        let mut c = Circuit::new(2);
        c.x(0);
        let s = run(&c, StateVec::zero(3)).unwrap();
        assert!(s.amplitude(0b001).approx_eq(Complex::one(), 1e-12));
    }
}
