//! Equivalence checking.

use qxmap_arch::Layout;
use qxmap_circuit::Circuit;

use crate::complex::Complex;
use crate::state::{run, NonUnitaryError, StateVec};

/// Whether two circuits over the same register implement the same unitary
/// up to one global phase.
///
/// Runs both circuits on every computational basis state and demands a
/// *single* phase factor reconciling all columns.
///
/// # Errors
///
/// Returns [`NonUnitaryError`] if either circuit measures.
///
/// # Panics
///
/// Panics if the circuits have different register sizes or more than 12
/// qubits (4096² amplitude comparisons).
pub fn equivalent_unitaries(a: &Circuit, b: &Circuit, tol: f64) -> Result<bool, NonUnitaryError> {
    assert_eq!(a.num_qubits(), b.num_qubits(), "register size mismatch");
    let n = a.num_qubits();
    assert!(n <= 12, "equivalence check limited to 12 qubits");
    let mut phase: Option<Complex> = None;
    for basis in 0..(1usize << n) {
        let sa = run(a, StateVec::basis(n, basis))?;
        let sb = run(b, StateVec::basis(n, basis))?;
        if !columns_match(&sa, &sb, &mut phase, tol) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Layout-aware equivalence: does `mapped` (over `m` physical qubits)
/// implement `original` (over `n` logical qubits) given the initial and
/// final logical→physical layouts?
///
/// For every logical basis input, the physical input places logical qubit
/// `j`'s bit on `initial.phys_of(j)` (idle physical qubits start at `|0⟩`);
/// the physical output must equal the original circuit's output lifted
/// through `fin`, with one consistent global phase across all inputs.
///
/// # Errors
///
/// Returns [`NonUnitaryError`] if either circuit measures.
///
/// # Panics
///
/// Panics if a layout is incomplete, or the instance exceeds 12 logical /
/// 20 physical qubits.
pub fn mapped_equivalent(
    original: &Circuit,
    mapped: &Circuit,
    initial: &Layout,
    fin: &Layout,
    tol: f64,
) -> Result<bool, NonUnitaryError> {
    let n = original.num_qubits();
    let m = mapped.num_qubits();
    assert!(n <= 12 && m <= 20, "instance too large for simulation");
    assert!(
        initial.is_complete() && fin.is_complete(),
        "layouts incomplete"
    );

    let mut phase: Option<Complex> = None;
    for basis in 0..(1usize << n) {
        // Lift the logical basis through the initial layout.
        let mut phys_index = 0usize;
        for j in 0..n {
            if basis & (1 << j) != 0 {
                phys_index |= 1 << initial.phys_of(j).expect("complete layout");
            }
        }
        let got = run(mapped, StateVec::basis(m, phys_index))?;

        // Expected: run the original, lift through the final layout.
        let logical_out = run(original, StateVec::basis(n, basis))?;
        let mut expected = vec![Complex::zero(); 1 << m];
        for (idx, amp) in logical_out.amplitudes().iter().enumerate() {
            if amp.norm_sqr() == 0.0 {
                continue;
            }
            let mut phys = 0usize;
            for j in 0..n {
                if idx & (1 << j) != 0 {
                    phys |= 1 << fin.phys_of(j).expect("complete layout");
                }
            }
            expected[phys] = *amp;
        }

        for (idx, &e) in expected.iter().enumerate() {
            let g = got.amplitude(idx);
            if !amp_matches(g, e, &mut phase, tol) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

fn columns_match(a: &StateVec, b: &StateVec, phase: &mut Option<Complex>, tol: f64) -> bool {
    for idx in 0..a.amplitudes().len() {
        if !amp_matches(a.amplitude(idx), b.amplitude(idx), phase, tol) {
            return false;
        }
    }
    true
}

/// Checks `got ≈ phase · expected`, fixing the phase on the first
/// significant amplitude.
fn amp_matches(got: Complex, expected: Complex, phase: &mut Option<Complex>, tol: f64) -> bool {
    match phase {
        Some(p) => got.approx_eq(*p * expected, tol),
        None => {
            if expected.norm_sqr() < tol {
                return got.norm_sqr() < tol;
            }
            // phase = got / expected (expected is significant here).
            let denom = expected.norm_sqr();
            let p = got * expected.conj().scale(1.0 / denom);
            if (p.norm() - 1.0).abs() > tol {
                return false;
            }
            *phase = Some(p);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_arch::Layout;

    #[test]
    fn identical_circuits_are_equivalent() {
        let mut a = Circuit::new(2);
        a.h(0);
        a.cx(0, 1);
        assert!(equivalent_unitaries(&a, &a.clone(), 1e-9).unwrap());
    }

    #[test]
    fn global_phase_is_ignored_but_relative_is_not() {
        // Z·X = iY: equivalent to Y up to global phase i.
        let mut zx = Circuit::new(1);
        zx.x(0);
        zx.z(0);
        let mut y = Circuit::new(1);
        y.y(0);
        assert!(equivalent_unitaries(&zx, &y, 1e-9).unwrap());
        // But X is not equivalent to Y.
        let mut x = Circuit::new(1);
        x.x(0);
        assert!(!equivalent_unitaries(&x, &y, 1e-9).unwrap());
    }

    #[test]
    fn s_vs_z_differ() {
        let mut s = Circuit::new(1);
        s.s(0);
        let mut z = Circuit::new(1);
        z.z(0);
        assert!(!equivalent_unitaries(&s, &z, 1e-9).unwrap());
        // S·S = Z.
        let mut ss = Circuit::new(1);
        ss.s(0);
        ss.s(0);
        assert!(equivalent_unitaries(&ss, &z, 1e-9).unwrap());
    }

    #[test]
    fn mapped_identity_layout() {
        let mut original = Circuit::new(2);
        original.h(0);
        original.cx(0, 1);
        let layout = Layout::identity(2, 3);
        let mapped = original.map_qubits(3, |q| q);
        assert!(mapped_equivalent(&original, &mapped, &layout, &layout, 1e-9).unwrap());
    }

    #[test]
    fn mapped_with_relabeling() {
        let mut original = Circuit::new(2);
        original.h(0);
        original.cx(0, 1);
        // q0→p2, q1→p0.
        let mut layout = Layout::new(2, 3);
        layout.assign(0, 2).unwrap();
        layout.assign(1, 0).unwrap();
        let mapped = original.map_qubits(3, |q| [2, 0][q]);
        assert!(mapped_equivalent(&original, &mapped, &layout, &layout, 1e-9).unwrap());
        // The wrong layout must fail.
        let id = Layout::identity(2, 3);
        assert!(!mapped_equivalent(&original, &mapped, &id, &id, 1e-9).unwrap());
    }

    #[test]
    fn mapped_with_swap_updates_final_layout() {
        // Original: CX(0,1). Mapped: CX(0,1) then SWAP(0,1) with final
        // layout exchanged.
        let mut original = Circuit::new(2);
        original.cx(0, 1);
        let mut mapped = Circuit::new(2);
        mapped.cx(0, 1);
        mapped.swap_gate(0, 1);
        let init = Layout::identity(2, 2);
        let mut fin = Layout::new(2, 2);
        fin.assign(0, 1).unwrap();
        fin.assign(1, 0).unwrap();
        assert!(mapped_equivalent(&original, &mapped, &init, &fin, 1e-9).unwrap());
        // Claiming the layout did not change must fail.
        assert!(!mapped_equivalent(&original, &mapped, &init, &init, 1e-9).unwrap());
    }

    #[test]
    fn phase_consistency_across_columns() {
        // diag(1, i) (= S) vs diag(i, 1): equal up to global phase? S = e^{iπ/4}·diag(e^{-iπ/4}, e^{iπ/4})
        // and diag(i,1) = i·diag(1, -i)... The two differ by a *relative*
        // phase, so they must NOT be equivalent.
        let mut s = Circuit::new(1);
        s.s(0);
        let mut other = Circuit::new(1);
        other.x(0);
        other.s(0);
        other.x(0); // X·S·X = diag(i, 1)
        assert!(!equivalent_unitaries(&s, &other, 1e-9).unwrap());
    }
}
