//! Minimal complex arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// ```
/// use qxmap_sim::Complex;
/// let i = Complex::i();
/// assert_eq!(i * i, -Complex::one());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs `re + im·i`.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Zero.
    pub fn zero() -> Complex {
        Complex::new(0.0, 0.0)
    }

    /// One.
    pub fn one() -> Complex {
        Complex::new(1.0, 0.0)
    }

    /// The imaginary unit.
    pub fn i() -> Complex {
        Complex::new(0.0, 1.0)
    }

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }

    /// Whether both components are within `tol` of `other`'s.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a - a, Complex::zero());
        assert_eq!(a * Complex::one(), a);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        assert_eq!((z * z.conj()).im, 0.0);
    }

    #[test]
    fn angle_exponential() {
        let z = Complex::from_angle(std::f64::consts::PI);
        assert!(z.approx_eq(Complex::new(-1.0, 0.0), 1e-12));
        let z = Complex::from_angle(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::i(), 1e-12));
    }

    #[test]
    fn display() {
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex::new(0.5, 2.0).to_string(), "0.5+2i");
    }
}
