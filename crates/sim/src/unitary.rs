//! Dense unitary extraction for small circuits.

use qxmap_circuit::Circuit;

use crate::complex::Complex;
use crate::state::{run, NonUnitaryError, StateVec};

/// A dense `2ⁿ × 2ⁿ` unitary matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Unitary {
    num_qubits: usize,
    rows: Vec<Vec<Complex>>,
}

impl Unitary {
    /// Extracts the matrix of `circuit` by running each basis column.
    ///
    /// # Errors
    ///
    /// Returns [`NonUnitaryError`] if the circuit measures.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than 10 qubits (1M complex entries).
    pub fn of(circuit: &Circuit) -> Result<Unitary, NonUnitaryError> {
        let n = circuit.num_qubits();
        assert!(n <= 10, "unitary extraction limited to 10 qubits");
        let size = 1usize << n;
        let mut rows = vec![vec![Complex::zero(); size]; size];
        // Column-major writes into row-major storage: indexed on purpose.
        #[allow(clippy::needless_range_loop)]
        for col in 0..size {
            let out = run(circuit, StateVec::basis(n, col))?;
            for (row, amp) in out.amplitudes().iter().enumerate() {
                rows[row][col] = *amp;
            }
        }
        Ok(Unitary {
            num_qubits: n,
            rows,
        })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Matrix entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn entry(&self, row: usize, col: usize) -> Complex {
        self.rows[row][col]
    }

    /// Whether `U·U† = I` holds within `tol` — a self-check that the gate
    /// set and simulator preserve unitarity.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let size = self.rows.len();
        for r in 0..size {
            for c in 0..size {
                let mut dot = Complex::zero();
                for k in 0..size {
                    dot += self.rows[r][k] * self.rows[c][k].conj();
                }
                let expected = if r == c {
                    Complex::one()
                } else {
                    Complex::zero()
                };
                if !dot.approx_eq(expected, tol) {
                    return false;
                }
            }
        }
        true
    }

    /// Hilbert–Schmidt fidelity `|tr(U†V)| / 2ⁿ` — 1.0 iff equal up to
    /// global phase.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn fidelity(&self, other: &Unitary) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let size = self.rows.len();
        let mut trace = Complex::zero();
        for r in 0..size {
            for k in 0..size {
                trace += self.rows[k][r].conj() * other.rows[k][r];
            }
        }
        trace.norm() / size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_circuit::Circuit;

    #[test]
    fn hadamard_matrix() {
        let mut c = Circuit::new(1);
        c.h(0);
        let u = Unitary::of(&c).unwrap();
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u.entry(0, 0).approx_eq(Complex::new(r, 0.0), 1e-12));
        assert!(u.entry(1, 1).approx_eq(Complex::new(-r, 0.0), 1e-12));
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn cnot_is_a_permutation_matrix() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let u = Unitary::of(&c).unwrap();
        // control = qubit 0 (low bit): |01⟩(idx 1) ↔ |11⟩(idx 3).
        assert!(u.entry(3, 1).approx_eq(Complex::one(), 1e-12));
        assert!(u.entry(1, 3).approx_eq(Complex::one(), 1e-12));
        assert!(u.entry(0, 0).approx_eq(Complex::one(), 1e-12));
        assert!(u.entry(2, 2).approx_eq(Complex::one(), 1e-12));
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn fidelity_detects_equivalence_and_difference() {
        let mut zx = Circuit::new(1);
        zx.x(0);
        zx.z(0);
        let mut y = Circuit::new(1);
        y.y(0);
        let uzx = Unitary::of(&zx).unwrap();
        let uy = Unitary::of(&y).unwrap();
        assert!((uzx.fidelity(&uy) - 1.0).abs() < 1e-9, "ZX ∝ Y");
        let mut x = Circuit::new(1);
        x.x(0);
        let ux = Unitary::of(&x).unwrap();
        assert!(ux.fidelity(&uy) < 0.5, "X and Y are far apart");
    }

    #[test]
    fn random_circuit_stays_unitary() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.t(1);
        c.cx(0, 2);
        c.rx(0.7, 1);
        c.cx(2, 1);
        c.u(0.3, -1.2, 2.2, 0);
        let u = Unitary::of(&c).unwrap();
        assert!(u.is_unitary(1e-9));
        assert!((u.fidelity(&u) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_is_rejected() {
        let mut c = Circuit::with_clbits(1, 1);
        c.measure(0, 0);
        assert!(Unitary::of(&c).is_err());
    }
}
