//! QXBC: the versioned binary circuit interchange format.
//!
//! QASM text is the universal ingest form, but it pays lexing, parsing
//! and gate inlining on every read. QXBC is the fast lane: a flat,
//! little-endian encoding of an already-elaborated [`Circuit`] that
//! decodes in one allocation-bounded pass, with the same hostile-input
//! discipline as the solve-cache snapshot format — sized fields are
//! validated against the bytes actually present *before* any
//! preallocation, unknown versions are rejected by number before any
//! content is trusted, and an FNV-1a checksum over the whole payload
//! rejects corruption outright (all-or-nothing: no partial circuits).
//!
//! ## Layout (version 1, all integers little-endian)
//!
//! | field       | size      | contents                                   |
//! |-------------|-----------|--------------------------------------------|
//! | magic       | 8         | `b"QXBCCIRC"`                              |
//! | version     | u32       | [`QXBC_VERSION`]                           |
//! | name length | u32       | byte length of the circuit name            |
//! | name        | varies    | UTF-8 circuit name                         |
//! | num_qubits  | u32       | quantum register size                      |
//! | num_clbits  | u32       | classical register size                    |
//! | gate count  | u32       | number of gate records                     |
//! | aux count   | u32       | number of u32 words in the aux table       |
//! | gates       | 36 × n    | fixed-width gate records (below)           |
//! | aux table   | 4 × m     | barrier qubit lists, referenced by records |
//! | checksum    | u64       | FNV-1a over every preceding byte           |
//!
//! Each gate record is exactly 36 bytes: `tag: u8`, `kind: u8` (single-
//! qubit kind, else 0), two reserved zero bytes, `a: u32`, `b: u32`, and
//! three u64 parameter words (angle IEEE-754 bit patterns, else 0).
//! Barriers keep records fixed-width by storing their qubit list in the
//! aux table: `a` is the word offset, `b` the length.

use std::error::Error;
use std::fmt;

use qxmap_circuit::{Circuit, CircuitSkeleton, Gate, OneQubitKind, SkeletonBuilder};

/// File magic: the first eight bytes of every QXBC payload.
pub const QXBC_MAGIC: &[u8; 8] = b"QXBCCIRC";

/// Current encoding version. Decoders reject any other version by
/// number, before trusting any content.
pub const QXBC_VERSION: u32 = 1;

/// Bytes per fixed-width gate record.
const RECORD_BYTES: usize = 36;

/// Why a QXBC payload was rejected. Decoding is all-or-nothing: any
/// error means no circuit (or skeleton) was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QxbcError {
    /// The payload does not start with [`QXBC_MAGIC`].
    BadMagic,
    /// The payload's version is not the supported one.
    VersionMismatch {
        /// Version the payload declares.
        found: u32,
        /// Version this decoder supports.
        supported: u32,
    },
    /// The payload ended before a declared field (or declared a length
    /// exceeding the bytes present).
    Truncated,
    /// The payload's checksum does not match its content.
    ChecksumMismatch,
    /// The payload is structurally invalid (reason attached).
    Corrupted(&'static str),
}

impl fmt::Display for QxbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QxbcError::BadMagic => write!(f, "not a QXBC payload (bad magic)"),
            QxbcError::VersionMismatch { found, supported } => {
                write!(
                    f,
                    "QXBC version {found} is not supported (expected {supported})"
                )
            }
            QxbcError::Truncated => write!(f, "QXBC payload is truncated"),
            QxbcError::ChecksumMismatch => write!(f, "QXBC checksum mismatch"),
            QxbcError::Corrupted(why) => write!(f, "QXBC payload corrupted: {why}"),
        }
    }
}

impl Error for QxbcError {}

/// FNV-1a over a byte slice — same mix as the snapshot format and
/// [`CircuitSkeleton::fingerprint`].
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a circuit as a QXBC payload.
pub fn encode_qxbc(circuit: &Circuit) -> Vec<u8> {
    let gates = circuit.gates();
    let mut out = Vec::with_capacity(32 + circuit.name().len() + gates.len() * RECORD_BYTES);
    out.extend_from_slice(QXBC_MAGIC);
    out.extend_from_slice(&QXBC_VERSION.to_le_bytes());
    out.extend_from_slice(&(circuit.name().len() as u32).to_le_bytes());
    out.extend_from_slice(circuit.name().as_bytes());
    out.extend_from_slice(&(circuit.num_qubits() as u32).to_le_bytes());
    out.extend_from_slice(&(circuit.num_clbits() as u32).to_le_bytes());
    out.extend_from_slice(&(gates.len() as u32).to_le_bytes());
    let mut aux: Vec<u32> = Vec::new();
    for gate in gates {
        if let Gate::Barrier(qs) = gate {
            aux.reserve(qs.len());
        }
    }
    // Aux count must precede the records, so lay the table out first.
    let mut records = Vec::with_capacity(gates.len() * RECORD_BYTES);
    for gate in gates {
        let (tag, kind, a, b, params): (u8, u8, u32, u32, [u64; 3]) = match gate {
            Gate::One { kind, qubit } => {
                let (k, params) = encode_kind(kind);
                (1, k, *qubit as u32, 0, params)
            }
            Gate::Cnot { control, target } => (2, 0, *control as u32, *target as u32, [0; 3]),
            Gate::Swap { a, b } => (3, 0, *a as u32, *b as u32, [0; 3]),
            Gate::Barrier(qs) => {
                let offset = aux.len() as u32;
                aux.extend(qs.iter().map(|&q| q as u32));
                (4, 0, offset, qs.len() as u32, [0; 3])
            }
            Gate::Measure { qubit, clbit } => (5, 0, *qubit as u32, *clbit as u32, [0; 3]),
        };
        records.push(tag);
        records.push(kind);
        records.extend_from_slice(&[0, 0]);
        records.extend_from_slice(&a.to_le_bytes());
        records.extend_from_slice(&b.to_le_bytes());
        for p in params {
            records.extend_from_slice(&p.to_le_bytes());
        }
    }
    out.extend_from_slice(&(aux.len() as u32).to_le_bytes());
    out.extend_from_slice(&records);
    for word in &aux {
        out.extend_from_slice(&word.to_le_bytes());
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

fn encode_kind(kind: &OneQubitKind) -> (u8, [u64; 3]) {
    match kind {
        OneQubitKind::I => (0, [0; 3]),
        OneQubitKind::X => (1, [0; 3]),
        OneQubitKind::Y => (2, [0; 3]),
        OneQubitKind::Z => (3, [0; 3]),
        OneQubitKind::H => (4, [0; 3]),
        OneQubitKind::S => (5, [0; 3]),
        OneQubitKind::Sdg => (6, [0; 3]),
        OneQubitKind::T => (7, [0; 3]),
        OneQubitKind::Tdg => (8, [0; 3]),
        OneQubitKind::Rx(a) => (9, [a.to_bits(), 0, 0]),
        OneQubitKind::Ry(a) => (10, [a.to_bits(), 0, 0]),
        OneQubitKind::Rz(a) => (11, [a.to_bits(), 0, 0]),
        OneQubitKind::Phase(a) => (12, [a.to_bits(), 0, 0]),
        OneQubitKind::U(t, p, l) => (13, [t.to_bits(), p.to_bits(), l.to_bits()]),
    }
}

fn decode_kind(kind: u8, params: [u64; 3]) -> Result<OneQubitKind, QxbcError> {
    let fixed = |k: OneQubitKind| {
        if params == [0; 3] {
            Ok(k)
        } else {
            Err(QxbcError::Corrupted("parameter words on a fixed gate kind"))
        }
    };
    let angled = |k: fn(f64) -> OneQubitKind| {
        if params[1] == 0 && params[2] == 0 {
            Ok(k(f64::from_bits(params[0])))
        } else {
            Err(QxbcError::Corrupted("excess parameter words"))
        }
    };
    match kind {
        0 => fixed(OneQubitKind::I),
        1 => fixed(OneQubitKind::X),
        2 => fixed(OneQubitKind::Y),
        3 => fixed(OneQubitKind::Z),
        4 => fixed(OneQubitKind::H),
        5 => fixed(OneQubitKind::S),
        6 => fixed(OneQubitKind::Sdg),
        7 => fixed(OneQubitKind::T),
        8 => fixed(OneQubitKind::Tdg),
        9 => angled(OneQubitKind::Rx),
        10 => angled(OneQubitKind::Ry),
        11 => angled(OneQubitKind::Rz),
        12 => angled(OneQubitKind::Phase),
        13 => Ok(OneQubitKind::U(
            f64::from_bits(params[0]),
            f64::from_bits(params[1]),
            f64::from_bits(params[2]),
        )),
        _ => Err(QxbcError::Corrupted("unknown single-qubit gate kind")),
    }
}

/// Bounds-checked cursor over a QXBC payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], QxbcError> {
        if n > self.bytes.len() - self.pos {
            return Err(QxbcError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, QxbcError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, QxbcError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Remaining unread bytes.
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads a count of `width`-byte items, rejecting counts that exceed
    /// the bytes actually present *before* any preallocation — a length
    /// bomb costs its author the parse, not this process its memory.
    fn count_of(&mut self, width: usize) -> Result<usize, QxbcError> {
        let n = self.u32()? as usize;
        if n > self.remaining() / width.max(1) {
            return Err(QxbcError::Truncated);
        }
        Ok(n)
    }
}

/// The decoded header fields shared by both decoding modes, with the
/// reader positioned at the first gate record.
struct Header<'a> {
    name: &'a str,
    num_qubits: usize,
    num_clbits: usize,
    gate_count: usize,
    aux: Vec<u32>,
    records: &'a [u8],
}

/// Validates framing (magic, version, sizes, checksum, no trailing
/// bytes) and splits the payload into header, records and aux table.
fn open(bytes: &[u8]) -> Result<Header<'_>, QxbcError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != QXBC_MAGIC {
        return Err(QxbcError::BadMagic);
    }
    let version = r.u32()?;
    if version != QXBC_VERSION {
        return Err(QxbcError::VersionMismatch {
            found: version,
            supported: QXBC_VERSION,
        });
    }
    let name_len = r.count_of(1)?;
    let name = std::str::from_utf8(r.take(name_len)?)
        .map_err(|_| QxbcError::Corrupted("circuit name is not UTF-8"))?;
    let num_qubits = r.u32()? as usize;
    let num_clbits = r.u32()? as usize;
    let gate_count = r.count_of(RECORD_BYTES)?;
    let aux_count = {
        // The aux count's bound must account for the records that
        // precede the table.
        let n = r.u32()? as usize;
        let after_records = r
            .remaining()
            .checked_sub(gate_count * RECORD_BYTES)
            .ok_or(QxbcError::Truncated)?;
        if n > after_records / 4 {
            return Err(QxbcError::Truncated);
        }
        n
    };
    let records = r.take(gate_count * RECORD_BYTES)?;
    let mut aux = Vec::with_capacity(aux_count);
    for _ in 0..aux_count {
        aux.push(r.u32()?);
    }
    let declared = r.u64()?;
    if r.remaining() != 0 {
        return Err(QxbcError::Corrupted("trailing bytes after checksum"));
    }
    if checksum(&bytes[..bytes.len() - 8]) != declared {
        return Err(QxbcError::ChecksumMismatch);
    }
    Ok(Header {
        name,
        num_qubits,
        num_clbits,
        gate_count,
        aux,
        records,
    })
}

/// Decodes record `i` against the header's aux table.
fn record_gate(h: &Header<'_>, i: usize) -> Result<Gate, QxbcError> {
    let rec = &h.records[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
    if rec[2] != 0 || rec[3] != 0 {
        return Err(QxbcError::Corrupted("reserved record bytes must be zero"));
    }
    let a = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes")) as usize;
    let b = u32::from_le_bytes(rec[8..12].try_into().expect("4 bytes")) as usize;
    let word = |k: usize| u64::from_le_bytes(rec[12 + 8 * k..20 + 8 * k].try_into().expect("8"));
    let params = [word(0), word(1), word(2)];
    let plain = |gate: Gate| {
        if rec[1] == 0 && params == [0; 3] {
            Ok(gate)
        } else {
            Err(QxbcError::Corrupted("stray fields on a two-operand record"))
        }
    };
    let gate = match rec[0] {
        1 => Gate::One {
            kind: decode_kind(rec[1], params)?,
            qubit: a,
        },
        2 => plain(Gate::Cnot {
            control: a,
            target: b,
        })?,
        3 => plain(Gate::Swap { a, b })?,
        4 => {
            if rec[1] != 0 || params != [0; 3] {
                return Err(QxbcError::Corrupted("stray fields on a barrier record"));
            }
            let end = a
                .checked_add(b)
                .filter(|&end| end <= h.aux.len())
                .ok_or(QxbcError::Corrupted("barrier aux span out of range"))?;
            Gate::Barrier(h.aux[a..end].iter().map(|&q| q as usize).collect())
        }
        5 => plain(Gate::Measure { qubit: a, clbit: b })?,
        _ => return Err(QxbcError::Corrupted("unknown gate tag")),
    };
    if !gate.fits(h.num_qubits, h.num_clbits) {
        return Err(QxbcError::Corrupted("gate out of range"));
    }
    Ok(gate)
}

/// Decodes a QXBC payload into a [`Circuit`].
///
/// # Errors
///
/// Returns [`QxbcError`] on any framing, version, bounds or checksum
/// violation; nothing is produced on error.
pub fn decode_qxbc(bytes: &[u8]) -> Result<Circuit, QxbcError> {
    let h = open(bytes)?;
    let mut circuit = Circuit::with_clbits(h.num_qubits, h.num_clbits).named(h.name);
    for i in 0..h.gate_count {
        // `record_gate` validated ranges via `Gate::fits`, the same
        // predicate `try_push` applies.
        circuit.push(record_gate(&h, i)?);
    }
    crate::hooks::note_circuit_built();
    Ok(circuit)
}

/// Decodes only the canonical [`CircuitSkeleton`] of a QXBC payload,
/// streaming gate records through a [`SkeletonBuilder`] without
/// materializing the circuit — the binary half of the skeleton-first
/// warm path. Accepts and rejects exactly the payloads [`decode_qxbc`]
/// does, with identical errors.
///
/// # Errors
///
/// Returns [`QxbcError`] exactly as [`decode_qxbc`] would.
pub fn decode_qxbc_skeleton(bytes: &[u8]) -> Result<CircuitSkeleton, QxbcError> {
    let h = open(bytes)?;
    let mut builder = SkeletonBuilder::new(h.num_qubits, h.num_clbits);
    for i in 0..h.gate_count {
        builder.push(&record_gate(&h, i)?);
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qxmap_circuit::paper_example;

    fn sample() -> Circuit {
        let mut c = Circuit::with_clbits(4, 2).named("sample");
        c.cx(2, 0).h(3).rx(-0.75, 1).u(0.1, -0.2, 0.3, 0);
        c.swap_gate(1, 3);
        c.push(Gate::Barrier(vec![3, 1, 0]));
        c.measure(0, 1);
        c
    }

    #[test]
    fn round_trips_bit_for_bit() {
        for c in [sample(), paper_example(), Circuit::new(0)] {
            let bytes = encode_qxbc(&c);
            let back = decode_qxbc(&bytes).unwrap();
            assert_eq!(back.gates(), c.gates());
            assert_eq!(back.num_qubits(), c.num_qubits());
            assert_eq!(back.num_clbits(), c.num_clbits());
            assert_eq!(back.name(), c.name());
            // Skeleton decoding agrees with the full decode.
            assert_eq!(
                decode_qxbc_skeleton(&bytes).unwrap(),
                CircuitSkeleton::of(&c)
            );
            assert_eq!(
                decode_qxbc_skeleton(&bytes).unwrap().fingerprint(),
                CircuitSkeleton::of(&c).fingerprint()
            );
        }
    }

    #[test]
    fn rejects_framing_violations() {
        let bytes = encode_qxbc(&sample());
        assert_eq!(decode_qxbc(b"NOTQXBC!").unwrap_err(), QxbcError::BadMagic);
        let mut bumped = bytes.clone();
        bumped[8] = bumped[8].wrapping_add(1);
        assert_eq!(
            decode_qxbc(&bumped).unwrap_err(),
            QxbcError::VersionMismatch {
                found: QXBC_VERSION + 1,
                supported: QXBC_VERSION,
            }
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_qxbc(&trailing).unwrap_err(),
            QxbcError::Corrupted("trailing bytes after checksum")
        );
    }

    #[test]
    fn length_bomb_is_bounded_before_allocation() {
        // A tiny payload declaring 4 billion gates must die at the size
        // check, not in an allocator.
        let mut bomb = Vec::new();
        bomb.extend_from_slice(QXBC_MAGIC);
        bomb.extend_from_slice(&QXBC_VERSION.to_le_bytes());
        bomb.extend_from_slice(&0u32.to_le_bytes()); // empty name
        bomb.extend_from_slice(&4u32.to_le_bytes());
        bomb.extend_from_slice(&0u32.to_le_bytes());
        bomb.extend_from_slice(&u32::MAX.to_le_bytes()); // gate count
        bomb.extend_from_slice(&u32::MAX.to_le_bytes()); // aux count
        assert_eq!(decode_qxbc(&bomb).unwrap_err(), QxbcError::Truncated);
        assert_eq!(
            decode_qxbc_skeleton(&bomb).unwrap_err(),
            QxbcError::Truncated
        );
    }
}
