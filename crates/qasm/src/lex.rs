//! Tokenizer for OpenQASM 2.0.

use std::fmt;

/// A lexical token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    Ident(String),
    Real(f64),
    Int(u64),
    Str(String),
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Arrow,
    Equals2,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Real(v) => write!(f, "{v}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Arrow => write!(f, "->"),
            TokenKind::Equals2 => write!(f, "=="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Caret => write!(f, "^"),
        }
    }
}

/// Lexing failure with line information.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LexError {
    pub line: usize,
    pub message: String,
}

/// Tokenizes `source`; `//` comments run to end of line.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        line,
                    });
                }
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        line,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        line,
                    });
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token {
                        kind: TokenKind::Equals2,
                        line,
                    });
                } else {
                    return Err(LexError {
                        line,
                        message: "single `=` is not a QASM token".into(),
                    });
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(LexError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '.' => {
                let mut s = String::new();
                let mut is_real = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                    } else if c == '.' || c == 'e' || c == 'E' {
                        is_real = true;
                        s.push(c);
                        chars.next();
                        if (c == 'e' || c == 'E') && matches!(chars.peek(), Some('+') | Some('-')) {
                            s.push(chars.next().expect("peeked"));
                        }
                    } else {
                        break;
                    }
                }
                let kind = if is_real {
                    TokenKind::Real(s.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad real literal `{s}`"),
                    })?)
                } else {
                    TokenKind::Int(s.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad integer literal `{s}`"),
                    })?)
                };
                tokens.push(Token { kind, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    line,
                });
            }
            _ => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ';' => TokenKind::Semicolon,
                    ',' => TokenKind::Comma,
                    '+' => TokenKind::Plus,
                    '*' => TokenKind::Star,
                    '^' => TokenKind::Caret,
                    other => {
                        return Err(LexError {
                            line,
                            message: format!("unexpected character `{other}`"),
                        })
                    }
                };
                chars.next();
                tokens.push(Token { kind, line });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_statement() {
        assert_eq!(
            kinds("qreg q[5];"),
            vec![
                TokenKind::Ident("qreg".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(5),
                TokenKind::RBracket,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("// hello\nh q; // tail"), kinds("h q;"));
    }

    #[test]
    fn reals_and_ints() {
        assert_eq!(
            kinds("1 2.5 3e-2 .5"),
            vec![
                TokenKind::Int(1),
                TokenKind::Real(2.5),
                TokenKind::Real(0.03),
                TokenKind::Real(0.5),
            ]
        );
    }

    #[test]
    fn arrow_and_minus() {
        assert_eq!(
            kinds("a -> b - c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Arrow,
                TokenKind::Ident("b".into()),
                TokenKind::Minus,
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn strings() {
        assert_eq!(
            kinds("include \"qelib1.inc\";"),
            vec![
                TokenKind::Ident("include".into()),
                TokenKind::Str("qelib1.inc".into()),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn line_tracking() {
        let toks = tokenize("a;\nb;\n\nc;").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[4].line, 4);
    }

    #[test]
    fn errors() {
        assert!(tokenize("@").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("a = b").is_err());
    }
}
