//! Embedded copy of the OpenQASM 2.0 standard library `qelib1.inc`
//! (Cross, Bishop, Smolin & Gambetta, arXiv:1707.03429 — reference [4] of
//! the paper).
//!
//! Gates whose names the converter recognizes natively (`x`, `h`, `cx`, …)
//! are emitted directly as IR gates; everything else (e.g. `ccx`, `cu3`)
//! is inlined through these definitions.

/// The `qelib1.inc` source.
pub(crate) const QELIB1: &str = r#"
// Quantum Experience (QE) Standard Header, qelib1.inc
gate u3(theta,phi,lambda) q { U(theta,phi,lambda) q; }
gate u2(phi,lambda) q { U(pi/2,phi,lambda) q; }
gate u1(lambda) q { U(0,0,lambda) q; }
gate cx c,t { CX c,t; }
gate id a { U(0,0,0) a; }
gate u0(gamma) q { U(0,0,0) q; }
gate x a { u3(pi,0,pi) a; }
gate y a { u3(pi,pi/2,pi/2) a; }
gate z a { u1(pi) a; }
gate h a { u2(0,pi) a; }
gate s a { u1(pi/2) a; }
gate sdg a { u1(-pi/2) a; }
gate t a { u1(pi/4) a; }
gate tdg a { u1(-pi/4) a; }
gate rx(theta) a { u3(theta,-pi/2,pi/2) a; }
gate ry(theta) a { u3(theta,0,0) a; }
gate rz(phi) a { u1(phi) a; }
gate swap a,b { cx a,b; cx b,a; cx a,b; }
gate cz a,b { h b; cx a,b; h b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate ccx a,b,c
{
  h c;
  cx b,c; tdg c;
  cx a,c; t c;
  cx b,c; tdg c;
  cx a,c; t b; t c; h c;
  cx a,b; t a; tdg b;
  cx a,b;
}
gate crz(lambda) a,b
{
  u1(lambda/2) b;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
}
gate cu1(lambda) a,b
{
  u1(lambda/2) a;
  cx a,b;
  u1(-lambda/2) b;
  cx a,b;
  u1(lambda/2) b;
}
gate cu3(theta,phi,lambda) c,t
{
  u1((lambda-phi)/2) t;
  cx c,t;
  u3(-theta/2,0,-(phi+lambda)/2) t;
  cx c,t;
  u3(theta/2,phi,0) t;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn qelib_parses_cleanly() {
        let p = parse_program(QELIB1).unwrap();
        assert!(!p.statements.is_empty());
    }

    #[test]
    fn toffoli_has_six_cnots() {
        use crate::ast::Statement;
        let p = parse_program(QELIB1).unwrap();
        let ccx = p
            .statements
            .iter()
            .find_map(|s| match s {
                Statement::GateDef { name, body, .. } if name == "ccx" => Some(body),
                _ => None,
            })
            .expect("ccx defined");
        let cnots = ccx.iter().filter(|op| op.name == "cx").count();
        assert_eq!(cnots, 6);
    }
}
