//! Parallel QASM parsing: statement-aligned source splitting.
//!
//! OpenQASM 2.0 statements are self-contained — the parser carries no
//! state from one statement into the next (gate *resolution* happens
//! later, in conversion). So a cheap sequential pre-scan can split the
//! source at top-level statement boundaries (`;`, or the `}` closing a
//! gate body), scoped threads can lex + parse each chunk independently,
//! and stitching the per-chunk statement lists back together in order
//! yields the same [`Program`] the sequential parser builds.
//!
//! Error parity is part of the contract, not an approximation, and it is
//! achieved by never *surfacing* a chunk error: if any chunk fails to
//! parse, the whole source is re-parsed sequentially and that error —
//! line attribution, phase ordering (the sequential parser tokenizes the
//! entire document before parsing any of it, so lex errors outrank
//! earlier parse errors) and all — is returned verbatim. Failure is the
//! rare path; paying one extra parse there buys byte-for-byte identical
//! diagnostics on every input. Likewise, when the pre-scan cannot
//! establish boundaries it trusts (an unterminated string, an unbalanced
//! `}`), it declines and the whole source goes through the sequential
//! path directly.

use crate::ast::Program;
use crate::parse::{parse_chunk, parse_program, ParseQasmError};

/// Sources below this many bytes parse sequentially in
/// [`parse_program_fast`]: thread spawn and stitch overhead only pays
/// for itself on large inputs. Override per-process with
/// [`PARALLEL_THRESHOLD_ENV`].
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 64 * 1024;

/// Environment variable overriding [`DEFAULT_PARALLEL_THRESHOLD`] (a
/// byte count; `0` forces the parallel path for every input).
pub const PARALLEL_THRESHOLD_ENV: &str = "QXMAP_QASM_PARALLEL_THRESHOLD";

fn parallel_threshold() -> usize {
    std::env::var(PARALLEL_THRESHOLD_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_PARALLEL_THRESHOLD)
}

/// Parses QASM source, choosing the parallel path for inputs at or above
/// the threshold (see [`DEFAULT_PARALLEL_THRESHOLD`]) and the sequential
/// path below it. Result and errors are identical either way.
///
/// # Errors
///
/// Exactly those of [`parse_program`].
pub fn parse_program_fast(source: &str) -> Result<Program, ParseQasmError> {
    if source.len() >= parallel_threshold() {
        parse_program_parallel(source)
    } else {
        parse_program(source)
    }
}

/// Parses QASM source on scoped threads, one statement-aligned chunk per
/// thread, producing the identical [`Program`] (and identical
/// [`ParseQasmError`], line included) as [`parse_program`]. Falls back
/// to the sequential parser when the input cannot be split (too few
/// statements, or malformed in a way the pre-scan refuses to cut).
///
/// # Errors
///
/// Exactly those of [`parse_program`].
pub fn parse_program_parallel(source: &str) -> Result<Program, ParseQasmError> {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    parse_program_chunked(source, threads)
}

/// [`parse_program_parallel`] with an explicit chunk-count bound —
/// exposed so tests and benchmarks can force a specific split instead of
/// inheriting the machine's parallelism.
///
/// # Errors
///
/// Exactly those of [`parse_program`].
pub fn parse_program_chunked(source: &str, chunks: usize) -> Result<Program, ParseQasmError> {
    let Some(plan) = plan_chunks(source, chunks) else {
        return parse_program(source);
    };

    let mut results: Vec<Option<Result<Program, ParseQasmError>>> = Vec::new();
    results.resize_with(plan.len(), || None);
    std::thread::scope(|scope| {
        let mut rest = results.as_mut_slice();
        for (i, chunk) in plan.iter().enumerate() {
            let (slot, tail) = rest.split_first_mut().expect("one slot per chunk");
            rest = tail;
            if i == 0 {
                // The first chunk parses on this thread: with one chunk
                // per core, the spawning thread would otherwise idle.
                *slot = Some(parse_chunk(chunk.text, chunk.start_line, true));
            } else {
                scope.spawn(move || {
                    *slot = Some(parse_chunk(chunk.text, chunk.start_line, false));
                });
            }
        }
    });

    // Stitch in order. Any chunk failure means the document is
    // malformed; re-parse sequentially so the reported error is the
    // canonical one (error line attribution can depend on tokens beyond
    // a chunk boundary, so a chunk's own error is merely advisory).
    let mut program = Program::default();
    for (i, result) in results.into_iter().enumerate() {
        match result.expect("every chunk was parsed") {
            Err(_) => return parse_program(source),
            Ok(chunk) => {
                if i == 0 {
                    program.version = chunk.version;
                }
                program.includes_qelib |= chunk.includes_qelib;
                program.statements.extend(chunk.statements);
            }
        }
    }
    Ok(program)
}

/// One chunk of the split: a statement-aligned slice of the source and
/// the 1-based original line its first byte sits on.
struct Chunk<'a> {
    text: &'a str,
    start_line: usize,
}

/// A top-level statement boundary found by the pre-scan.
struct Cut {
    /// Byte offset one past the boundary token (`;` or closing `}`).
    end: usize,
    /// 1-based line the boundary token sits on.
    line: usize,
}

/// Groups the pre-scanned statement boundaries into at most `chunks`
/// contiguous chunks. `None` means "parse sequentially": the input has
/// too few statements to split, or the pre-scan declined.
fn plan_chunks(source: &str, chunks: usize) -> Option<Vec<Chunk<'_>>> {
    if chunks < 2 {
        return None;
    }
    let cuts = prescan(source)?;
    let chunks = chunks.min(cuts.len());
    if chunks < 2 {
        return None;
    }
    let per_chunk = cuts.len().div_ceil(chunks);
    let mut plan = Vec::with_capacity(chunks);
    let mut start = 0usize;
    let mut start_line = 1usize;
    for group in cuts.chunks(per_chunk) {
        let last = group.last().expect("chunks() yields non-empty groups");
        plan.push(Chunk {
            text: &source[start..last.end],
            start_line,
        });
        start = last.end;
        start_line = last.line;
    }
    // Any tail past the final boundary (trailing comments/whitespace, or
    // an incomplete final statement) belongs to the last chunk so its
    // errors surface exactly as the sequential parser would report them.
    if start < source.len() {
        let last = plan.last_mut().expect("chunks >= 2");
        let begin = last.text.as_ptr() as usize - source.as_ptr() as usize;
        last.text = &source[begin..];
    }
    Some(plan)
}

/// Sequentially scans for top-level statement boundaries, tracking lines
/// the same way the lexer does. Returns `None` when the source contains
/// something that prevents trustworthy splitting — an unterminated or
/// newline-crossing string literal, or an unbalanced `}` — in which case
/// the caller parses sequentially and the lexer/parser reports the
/// canonical error.
fn prescan(source: &str) -> Option<Vec<Cut>> {
    let bytes = source.as_bytes();
    let mut cuts = Vec::new();
    let mut line = 1usize;
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: skip to (not past) the newline so the
                // line counter above sees it.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        // The lexer rejects both; let it.
                        Some(b'\n') | None => return None,
                        Some(_) => i += 1,
                    }
                }
            }
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                // A closing brace with no opener is a guaranteed parse
                // error; don't guess at boundaries around it.
                depth = depth.checked_sub(1)?;
                i += 1;
                if depth == 0 {
                    cuts.push(Cut { end: i, line });
                }
            }
            b';' => {
                i += 1;
                if depth == 0 {
                    cuts.push(Cut { end: i, line });
                }
            }
            _ => i += 1,
        }
    }
    Some(cuts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[2];\n\
                       gate foo(a) x, y { rz(a) x; cx x, y; }\n\
                       h q[0]; h q[1];\nfoo(pi/2) q[2], q[3];\n// tail comment\n\
                       barrier q;\nmeasure q[0] -> c[0];\n";

    #[test]
    fn chunked_parse_matches_sequential() {
        let seq = parse_program(SRC).unwrap();
        for chunks in [2, 3, 4, 7, 64] {
            let par = parse_program_chunked(SRC, chunks).unwrap();
            assert_eq!(par, seq, "{chunks} chunks");
        }
        assert_eq!(parse_program_parallel(SRC).unwrap(), seq);
    }

    #[test]
    fn errors_match_sequential_with_lines() {
        // Parse error mid-document. (The sequential parser attributes
        // this one to the line after the offending `;`; parity with the
        // sequential report — not with intuition — is the contract.)
        let bad = "qreg q[2];\nh q[0];\nqreg r[;\nh q[1];\n";
        let seq = parse_program(bad).unwrap_err();
        assert_eq!(seq.line(), Some(4));
        assert!(seq.to_string().contains("expected integer"));
        for chunks in [2, 3, 8] {
            assert_eq!(parse_program_chunked(bad, chunks).unwrap_err(), seq);
        }
        // A lex error *after* a parse error wins, as in sequential mode
        // (the whole document is tokenized before parsing).
        let lex_after = "qreg q[2];\nqreg r[;\nh q[0];\n@;\n";
        let seq = parse_program(lex_after).unwrap_err();
        assert_eq!(seq.line(), Some(4));
        assert!(seq.to_string().contains("unexpected character"));
        for chunks in [2, 4] {
            assert_eq!(parse_program_chunked(lex_after, chunks).unwrap_err(), seq);
        }
    }

    #[test]
    fn mid_document_header_is_not_a_header_in_any_chunk() {
        let src = "qreg q[1];\nOPENQASM 2.0;\nh q[0];\n";
        let seq = parse_program(src).unwrap_err();
        for chunks in [2, 3] {
            assert_eq!(parse_program_chunked(src, chunks).unwrap_err(), seq);
        }
    }

    #[test]
    fn unsplittable_sources_fall_back() {
        // Unterminated string: prescan declines, sequential error wins.
        let bad = "include \"qelib1";
        assert_eq!(
            parse_program_chunked(bad, 4).unwrap_err(),
            parse_program(bad).unwrap_err()
        );
        // Stray closing brace.
        let bad = "}\nqreg q[1];\n";
        assert_eq!(
            parse_program_chunked(bad, 4).unwrap_err(),
            parse_program(bad).unwrap_err()
        );
        // A single statement cannot split but still parses.
        assert_eq!(
            parse_program_chunked("qreg q[3];", 4).unwrap(),
            parse_program("qreg q[3];").unwrap()
        );
    }

    #[test]
    fn incomplete_tail_reports_end_of_input_like_sequential() {
        let src = "qreg q[2];\nh q[0];\ncx q[0], q[1]";
        let seq = parse_program(src).unwrap_err();
        assert_eq!(parse_program_chunked(src, 2).unwrap_err(), seq);
    }
}
