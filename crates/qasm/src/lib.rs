//! # qxmap-qasm
//!
//! OpenQASM 2.0 front- and back-end for `qxmap` circuits. The benchmark
//! circuits the paper evaluates (RevLib functions decomposed to the IBM
//! basis, per reference \[4\] — Cross et al., "Open Quantum Assembly
//! Language") are distributed as QASM; this crate parses that dialect into
//! the [`qxmap_circuit::Circuit`] IR and serializes circuits back out.
//!
//! Supported: `OPENQASM 2.0` headers, `qreg`/`creg`, `include
//! "qelib1.inc"` (resolved against an embedded copy of the standard
//! library), hierarchical `gate` definitions with parameter expressions
//! (π-arithmetic, `sin`/`cos`/`tan`/`exp`/`ln`/`sqrt`, `^`), the builtin
//! `U`/`CX`, register broadcasting, `barrier` and `measure`.
//! `if`/`reset`/`opaque` applications are rejected with a clear error (the
//! mapping IR is purely unitary plus terminal measurement).
//!
//! ## Example
//!
//! ```
//! let source = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[3];
//!     creg c[3];
//!     h q[0];
//!     ccx q[0], q[1], q[2];
//!     measure q[0] -> c[0];
//! "#;
//! let circuit = qxmap_qasm::parse(source)?;
//! assert_eq!(circuit.num_qubits(), 3);
//! // The Toffoli inlines to the standard 6-CNOT network.
//! assert_eq!(circuit.num_cnots(), 6);
//! # Ok::<(), qxmap_qasm::ParseQasmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod convert;
pub mod hooks;
mod lex;
mod parallel;
mod parse;
mod qelib;
mod qxbc;
mod write;

pub use ast::{Arg, EvalError, Expr, GateOp, Program, Statement};
pub use convert::{to_circuit, to_skeleton};
pub use parallel::{
    parse_program_chunked, parse_program_fast, parse_program_parallel, DEFAULT_PARALLEL_THRESHOLD,
    PARALLEL_THRESHOLD_ENV,
};
pub use parse::{parse_program, ParseQasmError};
pub use qxbc::{
    decode_qxbc, decode_qxbc_skeleton, encode_qxbc, QxbcError, QXBC_MAGIC, QXBC_VERSION,
};
pub use write::to_qasm;

use qxmap_circuit::{Circuit, CircuitSkeleton};

/// Parses OpenQASM 2.0 source into a circuit, splitting large inputs
/// across threads (see [`parse_program_fast`]).
///
/// # Errors
///
/// Returns [`ParseQasmError`] on syntax errors, unknown gates or
/// registers, arity mismatches, or unsupported statements.
pub fn parse(source: &str) -> Result<Circuit, ParseQasmError> {
    let program = parse_program_fast(source)?;
    to_circuit(&program)
}

/// Parses OpenQASM 2.0 source straight to its canonical
/// [`CircuitSkeleton`], never materializing a [`Circuit`] — the text
/// half of the skeleton-first warm path. Accepts and rejects exactly
/// the sources [`parse`] does, with identical errors.
///
/// # Errors
///
/// Exactly those of [`parse`].
pub fn parse_skeleton(source: &str) -> Result<CircuitSkeleton, ParseQasmError> {
    let program = parse_program_fast(source)?;
    to_skeleton(&program)
}
