//! Process-wide ingest counters, exposed as a test hook.
//!
//! The skeleton-first warm path's whole promise is that a cache hit
//! never materializes a [`qxmap_circuit::Circuit`]. A promise like that
//! silently rots unless something counts: every site that builds a
//! circuit from external input (text conversion, QXBC decoding) bumps
//! [`circuits_built`], so a test can pin "this request built zero
//! circuits" instead of trusting the code path's shape. The counter is
//! one relaxed atomic increment per *circuit* (not per gate) — noise
//! next to the build itself.

use std::sync::atomic::{AtomicU64, Ordering};

static CIRCUITS_BUILT: AtomicU64 = AtomicU64::new(0);

/// Number of circuits materialized from QASM text or QXBC bytes since
/// process start. Monotonic; meaningful as a *delta* around the
/// operation under test.
pub fn circuits_built() -> u64 {
    CIRCUITS_BUILT.load(Ordering::Relaxed)
}

/// Records one circuit materialization (called by [`crate::to_circuit`]
/// and [`crate::decode_qxbc`]).
pub(crate) fn note_circuit_built() {
    CIRCUITS_BUILT.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn parsing_bumps_the_counter_and_skeletons_do_not() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nCX q[0], q[1];";
        let before = super::circuits_built();
        let program = crate::parse_program(src).unwrap();
        crate::to_skeleton(&program).unwrap();
        assert_eq!(
            super::circuits_built(),
            before,
            "skeleton conversion must not count as a circuit build"
        );
        crate::parse(src).unwrap();
        assert!(super::circuits_built() > before);
    }
}
