//! Abstract syntax tree for OpenQASM 2.0.

use std::collections::HashMap;
use std::fmt;

/// A parsed program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Declared language version (e.g. "2.0").
    pub version: String,
    /// Top-level statements in source order.
    pub statements: Vec<Statement>,
    /// Whether the source included the standard library
    /// (`include "qelib1.inc";`). The library's gate definitions are
    /// *not* spliced into `statements` — conversion resolves them from
    /// a table parsed once per process, so a serving daemon does not
    /// re-parse (or re-clone) ~30 gate bodies on every request.
    pub includes_qelib: bool,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `qreg name[size];`
    QReg {
        /// Register name.
        name: String,
        /// Number of qubits.
        size: usize,
    },
    /// `creg name[size];`
    CReg {
        /// Register name.
        name: String,
        /// Number of classical bits.
        size: usize,
    },
    /// `gate name(params) qargs { body }`
    GateDef {
        /// Gate name.
        name: String,
        /// Formal parameter names.
        params: Vec<String>,
        /// Formal qubit argument names.
        qargs: Vec<String>,
        /// Body operations (over the formal names).
        body: Vec<GateOp>,
    },
    /// A gate application at top level.
    Apply(GateOp),
    /// `measure q -> c;`
    Measure {
        /// Source qubit argument.
        qubit: Arg,
        /// Destination classical argument.
        clbit: Arg,
    },
    /// `barrier args;`
    Barrier(Vec<Arg>),
}

/// A gate application: `name(params) args;`
#[derive(Debug, Clone, PartialEq)]
pub struct GateOp {
    /// Gate name.
    pub name: String,
    /// Parameter expressions.
    pub params: Vec<Expr>,
    /// Qubit arguments.
    pub args: Vec<Arg>,
    /// Source line for error reporting.
    pub line: usize,
}

/// A register reference, optionally indexed: `q` or `q[3]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arg {
    /// Register (or formal argument) name.
    pub register: String,
    /// Index within the register, if given.
    pub index: Option<usize>,
}

impl fmt::Display for Arg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some(i) => write!(f, "{}[{i}]", self.register),
            None => write!(f, "{}", self.register),
        }
    }
}

/// A parameter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// The constant π.
    Pi,
    /// A formal parameter reference (inside gate bodies).
    Ident(String),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `lhs op rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Builtin function call.
    Func {
        /// Function name (sin, cos, tan, exp, ln, sqrt).
        func: String,
        /// Argument.
        arg: Box<Expr>,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation.
    Pow,
}

/// Error evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// The unbound identifier or unknown function.
    pub what: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot evaluate `{}`", self.what)
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Evaluates the expression under parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for unbound identifiers or unknown functions.
    pub fn eval(&self, bindings: &HashMap<String, f64>) -> Result<f64, EvalError> {
        match self {
            Expr::Num(v) => Ok(*v),
            Expr::Pi => Ok(std::f64::consts::PI),
            Expr::Ident(name) => bindings
                .get(name)
                .copied()
                .ok_or_else(|| EvalError { what: name.clone() }),
            Expr::Neg(e) => Ok(-e.eval(bindings)?),
            Expr::Bin { op, lhs, rhs } => {
                let l = lhs.eval(bindings)?;
                let r = rhs.eval(bindings)?;
                Ok(match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                    BinOp::Pow => l.powf(r),
                })
            }
            Expr::Func { func, arg } => {
                let v = arg.eval(bindings)?;
                Ok(match func.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    other => {
                        return Err(EvalError {
                            what: other.to_string(),
                        })
                    }
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_arithmetic() {
        let e = Expr::Bin {
            op: BinOp::Div,
            lhs: Box::new(Expr::Pi),
            rhs: Box::new(Expr::Num(2.0)),
        };
        let v = e.eval(&HashMap::new()).unwrap();
        assert!((v - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn eval_bindings() {
        let mut b = HashMap::new();
        b.insert("theta".to_string(), 0.5);
        let e = Expr::Neg(Box::new(Expr::Ident("theta".into())));
        assert_eq!(e.eval(&b).unwrap(), -0.5);
        let unbound = Expr::Ident("phi".into());
        assert!(unbound.eval(&b).is_err());
    }

    #[test]
    fn eval_functions() {
        let e = Expr::Func {
            func: "cos".into(),
            arg: Box::new(Expr::Num(0.0)),
        };
        assert_eq!(e.eval(&HashMap::new()).unwrap(), 1.0);
        let bad = Expr::Func {
            func: "sinh".into(),
            arg: Box::new(Expr::Num(0.0)),
        };
        assert!(bad.eval(&HashMap::new()).is_err());
    }

    #[test]
    fn eval_pow() {
        let e = Expr::Bin {
            op: BinOp::Pow,
            lhs: Box::new(Expr::Num(2.0)),
            rhs: Box::new(Expr::Num(10.0)),
        };
        assert_eq!(e.eval(&HashMap::new()).unwrap(), 1024.0);
    }

    #[test]
    fn arg_display() {
        let a = Arg {
            register: "q".into(),
            index: Some(2),
        };
        assert_eq!(a.to_string(), "q[2]");
        let b = Arg {
            register: "q".into(),
            index: None,
        };
        assert_eq!(b.to_string(), "q");
    }
}
