//! Circuit → OpenQASM 2.0 serialization.

use std::fmt::Write as _;

use qxmap_circuit::{Circuit, Gate, OneQubitKind};

/// Serializes a circuit as OpenQASM 2.0 using a single `q` register (and
/// `c` when the circuit has classical bits).
///
/// The output round-trips through [`crate::parse`]: parameterized gates
/// print with enough precision to reproduce their angles bit-for-bit in
/// practice (17 significant digits).
///
/// ```
/// let mut c = qxmap_circuit::Circuit::new(2);
/// c.h(0);
/// c.cx(0, 1);
/// let text = qxmap_qasm::to_qasm(&c);
/// let back = qxmap_qasm::parse(&text)?;
/// assert_eq!(back.gates(), c.gates());
/// # Ok::<(), qxmap_qasm::ParseQasmError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for gate in circuit.gates() {
        match gate {
            Gate::One { kind, qubit } => {
                let stmt = match kind {
                    OneQubitKind::I => format!("id q[{qubit}];"),
                    OneQubitKind::X => format!("x q[{qubit}];"),
                    OneQubitKind::Y => format!("y q[{qubit}];"),
                    OneQubitKind::Z => format!("z q[{qubit}];"),
                    OneQubitKind::H => format!("h q[{qubit}];"),
                    OneQubitKind::S => format!("s q[{qubit}];"),
                    OneQubitKind::Sdg => format!("sdg q[{qubit}];"),
                    OneQubitKind::T => format!("t q[{qubit}];"),
                    OneQubitKind::Tdg => format!("tdg q[{qubit}];"),
                    OneQubitKind::Rx(a) => format!("rx({}) q[{qubit}];", num(*a)),
                    OneQubitKind::Ry(a) => format!("ry({}) q[{qubit}];", num(*a)),
                    OneQubitKind::Rz(a) => format!("rz({}) q[{qubit}];", num(*a)),
                    OneQubitKind::Phase(a) => format!("u1({}) q[{qubit}];", num(*a)),
                    OneQubitKind::U(t, p, l) => {
                        format!("u3({},{},{}) q[{qubit}];", num(*t), num(*p), num(*l))
                    }
                };
                let _ = writeln!(out, "{stmt}");
            }
            Gate::Cnot { control, target } => {
                let _ = writeln!(out, "cx q[{control}], q[{target}];");
            }
            Gate::Swap { a, b } => {
                let _ = writeln!(out, "swap q[{a}], q[{b}];");
            }
            Gate::Barrier(qs) => {
                let args: Vec<String> = qs.iter().map(|q| format!("q[{q}]")).collect();
                let _ = writeln!(out, "barrier {};", args.join(", "));
            }
            Gate::Measure { qubit, clbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{clbit}];");
            }
        }
    }
    out
}

/// Formats an angle so it survives a parse round-trip.
fn num(v: f64) -> String {
    let s = format!("{v:.17e}");
    // QASM reals accept scientific notation; keep it canonical.
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_named_gates() {
        let mut c = Circuit::with_clbits(3, 3);
        c.h(0);
        c.x(1);
        c.sdg(2);
        c.tdg(0);
        c.cx(0, 2);
        c.swap_gate(1, 2);
        c.barrier();
        c.measure(0, 0);
        let text = to_qasm(&c);
        let back = parse(&text).unwrap();
        assert_eq!(back.gates(), c.gates());
        assert_eq!(back.num_clbits(), 3);
    }

    #[test]
    fn roundtrip_angles_exactly() {
        let mut c = Circuit::new(1);
        c.rz(0.123_456_789_012_345_68, 0);
        c.rx(-std::f64::consts::PI / 3.0, 0);
        c.u(1.0e-10, 2.5, -0.75, 0);
        let back = parse(&to_qasm(&c)).unwrap();
        for (a, b) in c.gates().iter().zip(back.gates()) {
            assert_eq!(a, b, "angle drifted in round-trip");
        }
    }

    #[test]
    fn header_and_registers_present() {
        let c = Circuit::new(4);
        let text = to_qasm(&c);
        assert!(text.contains("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[4];"));
        assert!(!text.contains("creg"));
    }

    #[test]
    fn phase_gate_uses_u1() {
        let mut c = Circuit::new(1);
        c.one(qxmap_circuit::OneQubitKind::Phase(1.5), 0);
        assert!(to_qasm(&c).contains("u1(1.5"));
    }
}
