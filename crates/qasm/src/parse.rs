//! Recursive-descent parser for OpenQASM 2.0.

use std::error::Error;
use std::fmt;

use crate::ast::{Arg, BinOp, Expr, GateOp, Program, Statement};
use crate::lex::{tokenize, Token, TokenKind};

/// A parse (or later conversion) failure, with source line when known.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    pub(crate) line: Option<usize>,
    pub(crate) message: String,
}

impl ParseQasmError {
    pub(crate) fn new(line: Option<usize>, message: impl Into<String>) -> ParseQasmError {
        ParseQasmError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line, when known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl Error for ParseQasmError {}

/// Parses source into an AST (no semantic checks beyond syntax).
///
/// `include "qelib1.inc";` splices the embedded standard library; any
/// other include is an error (the parser has no filesystem access).
///
/// # Errors
///
/// Returns [`ParseQasmError`] with line information on malformed input.
pub fn parse_program(source: &str) -> Result<Program, ParseQasmError> {
    parse_chunk(source, 1, true)
}

/// Parses one chunk of a statement-aligned source split: `source` starts
/// at 1-based line `start_line` of the original document, and only the
/// first chunk (`allow_header`) may consume an `OPENQASM` header —
/// anywhere else the keyword lexes as an ordinary identifier, exactly as
/// the sequential parser treats a mid-document header. Token lines are
/// shifted so statement line info (and thus conversion errors) report
/// original-document positions. Chunk *errors* are advisory only: the
/// parallel driver re-parses the whole source sequentially on any chunk
/// failure, so the canonical error always comes from [`parse_program`].
pub(crate) fn parse_chunk(
    source: &str,
    start_line: usize,
    allow_header: bool,
) -> Result<Program, ParseQasmError> {
    let offset = start_line.saturating_sub(1);
    let mut tokens =
        tokenize(source).map_err(|e| ParseQasmError::new(Some(e.line + offset), e.message))?;
    if offset > 0 {
        for t in &mut tokens {
            t.line += offset;
        }
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        program: Program::default(),
        allow_header,
    };
    parser.run()?;
    Ok(parser.program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
    allow_header: bool,
}

impl Parser {
    fn run(&mut self) -> Result<(), ParseQasmError> {
        // Optional OPENQASM header.
        if self.allow_header && self.peek_ident() == Some("OPENQASM") {
            self.next();
            let version = match self.next_kind()? {
                TokenKind::Real(v) => format!("{v:.1}"),
                TokenKind::Int(v) => format!("{v}"),
                other => return Err(self.err(format!("expected version, found {other}"))),
            };
            self.expect(TokenKind::Semicolon)?;
            self.program.version = version;
        }
        while self.pos < self.tokens.len() {
            self.statement()?;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<(), ParseQasmError> {
        let name = match self.peek_ident() {
            Some(name) => name.to_string(),
            None => {
                let t = self.next_kind()?;
                return Err(self.err(format!("expected statement, found {t}")));
            }
        };
        match name.as_str() {
            "qreg" | "creg" => {
                self.next();
                let reg = self.expect_ident()?;
                self.expect(TokenKind::LBracket)?;
                let size = self.expect_int()? as usize;
                self.expect(TokenKind::RBracket)?;
                self.expect(TokenKind::Semicolon)?;
                self.program.statements.push(if name == "qreg" {
                    Statement::QReg { name: reg, size }
                } else {
                    Statement::CReg { name: reg, size }
                });
            }
            "include" => {
                self.next();
                let file = match self.next_kind()? {
                    TokenKind::Str(s) => s,
                    other => return Err(self.err(format!("expected filename, found {other}"))),
                };
                self.expect(TokenKind::Semicolon)?;
                if file == "qelib1.inc" {
                    // Only flagged, never spliced: conversion resolves
                    // the library's definitions from a table parsed once
                    // per process (see [`Program::includes_qelib`]) —
                    // re-parsing ~30 gate bodies on every request
                    // dominated the serving tier's warm-hit path.
                    self.program.includes_qelib = true;
                } else {
                    return Err(self.err(format!(
                        "cannot include \"{file}\": only the embedded qelib1.inc is available"
                    )));
                }
            }
            "gate" => {
                self.next();
                let gname = self.expect_ident()?;
                let mut params = Vec::new();
                if self.peek_is(&TokenKind::LParen) {
                    self.next();
                    if !self.peek_is(&TokenKind::RParen) {
                        loop {
                            params.push(self.expect_ident()?);
                            if self.peek_is(&TokenKind::Comma) {
                                self.next();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                }
                let mut qargs = Vec::new();
                loop {
                    qargs.push(self.expect_ident()?);
                    if self.peek_is(&TokenKind::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(TokenKind::LBrace)?;
                let mut body = Vec::new();
                while !self.peek_is(&TokenKind::RBrace) {
                    if self.peek_ident() == Some("barrier") {
                        // Barriers inside gate bodies are scheduling hints;
                        // skip them during inlining.
                        self.next();
                        while !self.peek_is(&TokenKind::Semicolon) {
                            self.next();
                        }
                        self.next();
                        continue;
                    }
                    body.push(self.gate_op()?);
                }
                self.expect(TokenKind::RBrace)?;
                self.program.statements.push(Statement::GateDef {
                    name: gname,
                    params,
                    qargs,
                    body,
                });
            }
            "opaque" => {
                let line = self.line();
                return Err(ParseQasmError::new(
                    Some(line),
                    "opaque gates are not supported",
                ));
            }
            "measure" => {
                self.next();
                let qubit = self.arg()?;
                self.expect(TokenKind::Arrow)?;
                let clbit = self.arg()?;
                self.expect(TokenKind::Semicolon)?;
                self.program
                    .statements
                    .push(Statement::Measure { qubit, clbit });
            }
            "barrier" => {
                self.next();
                let mut args = Vec::new();
                loop {
                    args.push(self.arg()?);
                    if self.peek_is(&TokenKind::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
                self.expect(TokenKind::Semicolon)?;
                self.program.statements.push(Statement::Barrier(args));
            }
            "reset" => {
                let line = self.line();
                return Err(ParseQasmError::new(
                    Some(line),
                    "reset is not supported by the unitary mapping IR",
                ));
            }
            "if" => {
                let line = self.line();
                return Err(ParseQasmError::new(
                    Some(line),
                    "classically controlled operations are not supported",
                ));
            }
            _ => {
                let op = self.gate_op()?;
                self.program.statements.push(Statement::Apply(op));
            }
        }
        Ok(())
    }

    /// `name (params)? arg (, arg)* ;`
    fn gate_op(&mut self) -> Result<GateOp, ParseQasmError> {
        let line = self.line();
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek_is(&TokenKind::LParen) {
            self.next();
            if !self.peek_is(&TokenKind::RParen) {
                loop {
                    params.push(self.expr()?);
                    if self.peek_is(&TokenKind::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let mut args = Vec::new();
        loop {
            args.push(self.arg()?);
            if self.peek_is(&TokenKind::Comma) {
                self.next();
            } else {
                break;
            }
        }
        self.expect(TokenKind::Semicolon)?;
        Ok(GateOp {
            name,
            params,
            args,
            line,
        })
    }

    fn arg(&mut self) -> Result<Arg, ParseQasmError> {
        let register = self.expect_ident()?;
        let index = if self.peek_is(&TokenKind::LBracket) {
            self.next();
            let i = self.expect_int()? as usize;
            self.expect(TokenKind::RBracket)?;
            Some(i)
        } else {
            None
        };
        Ok(Arg { register, index })
    }

    // --- expressions (precedence climbing) -------------------------------

    fn expr(&mut self) -> Result<Expr, ParseQasmError> {
        self.expr_additive()
    }

    fn expr_additive(&mut self) -> Result<Expr, ParseQasmError> {
        let mut lhs = self.expr_multiplicative()?;
        loop {
            let op = if self.peek_is(&TokenKind::Plus) {
                BinOp::Add
            } else if self.peek_is(&TokenKind::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            self.next();
            let rhs = self.expr_multiplicative()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn expr_multiplicative(&mut self) -> Result<Expr, ParseQasmError> {
        let mut lhs = self.expr_unary()?;
        loop {
            let op = if self.peek_is(&TokenKind::Star) {
                BinOp::Mul
            } else if self.peek_is(&TokenKind::Slash) {
                BinOp::Div
            } else {
                break;
            };
            self.next();
            let rhs = self.expr_unary()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseQasmError> {
        if self.peek_is(&TokenKind::Minus) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.expr_unary()?)));
        }
        self.expr_power()
    }

    fn expr_power(&mut self) -> Result<Expr, ParseQasmError> {
        let base = self.expr_atom()?;
        if self.peek_is(&TokenKind::Caret) {
            self.next();
            let exp = self.expr_unary()?; // right-associative
            return Ok(Expr::Bin {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exp),
            });
        }
        Ok(base)
    }

    fn expr_atom(&mut self) -> Result<Expr, ParseQasmError> {
        match self.next_kind()? {
            TokenKind::Real(v) => Ok(Expr::Num(v)),
            TokenKind::Int(v) => Ok(Expr::Num(v as f64)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) if name == "pi" => Ok(Expr::Pi),
            TokenKind::Ident(name) => {
                if self.peek_is(&TokenKind::LParen) {
                    self.next();
                    let arg = self.expr()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Func {
                        func: name,
                        arg: Box::new(arg),
                    })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }

    // --- token plumbing ----------------------------------------------------

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map_or(0, |t| t.line)
    }

    fn err(&self, message: String) -> ParseQasmError {
        ParseQasmError::new(Some(self.line()), message)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn next_kind(&mut self) -> Result<TokenKind, ParseQasmError> {
        let line = self.line();
        match self.next() {
            Some(t) => Ok(t.kind.clone()),
            None => Err(ParseQasmError::new(Some(line), "unexpected end of input")),
        }
    }

    fn peek_is(&self, kind: &TokenKind) -> bool {
        self.tokens.get(self.pos).is_some_and(|t| &t.kind == kind)
    }

    fn peek_ident(&self) -> Option<&str> {
        match self.tokens.get(self.pos) {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Some(s),
            _ => None,
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseQasmError> {
        let found = self.next_kind()?;
        if found == kind {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {found}")))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseQasmError> {
        match self.next_kind()? {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_int(&mut self) -> Result<u64, ParseQasmError> {
        match self.next_kind()? {
            TokenKind::Int(v) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_header_and_registers() {
        let p = parse_program("OPENQASM 2.0;\nqreg q[4];\ncreg c[4];").unwrap();
        assert_eq!(p.version, "2.0");
        assert_eq!(
            p.statements[0],
            Statement::QReg {
                name: "q".into(),
                size: 4
            }
        );
    }

    #[test]
    fn parses_gate_application_with_params() {
        let p = parse_program("rz(pi/2) q[0];").unwrap();
        let Statement::Apply(op) = &p.statements[0] else {
            panic!("expected apply");
        };
        assert_eq!(op.name, "rz");
        assert_eq!(op.args[0].index, Some(0));
        assert_eq!(op.params.len(), 1);
    }

    #[test]
    fn parses_gate_definition() {
        let p = parse_program("gate foo(a) x, y { rz(a) x; cx x, y; }").unwrap();
        let Statement::GateDef {
            name,
            params,
            qargs,
            body,
        } = &p.statements[0]
        else {
            panic!("expected gate def");
        };
        assert_eq!(name, "foo");
        assert_eq!(params, &["a".to_string()]);
        assert_eq!(qargs, &["x".to_string(), "y".to_string()]);
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn includes_qelib() {
        // The include is flagged, not spliced: conversion resolves the
        // standard library from a table parsed once per process.
        let p = parse_program("include \"qelib1.inc\";").unwrap();
        assert!(p.includes_qelib);
        assert!(p.statements.is_empty());
        assert!(!parse_program("qreg q[1];").unwrap().includes_qelib);
        assert!(parse_program("include \"other.inc\";").is_err());
        // The library itself parses and defines a few dozen gates.
        let lib = parse_program(crate::qelib::QELIB1).unwrap();
        let defs = lib
            .statements
            .iter()
            .filter(|s| matches!(s, Statement::GateDef { .. }))
            .count();
        assert!(defs >= 20, "only {defs} gates in qelib1");
    }

    #[test]
    fn parses_measure_and_barrier() {
        let p = parse_program("measure q[0] -> c[0];\nbarrier q;").unwrap();
        assert!(matches!(p.statements[0], Statement::Measure { .. }));
        assert!(matches!(p.statements[1], Statement::Barrier(_)));
    }

    #[test]
    fn rejects_unsupported() {
        assert!(parse_program("reset q[0];").is_err());
        assert!(parse_program("if (c == 1) x q[0];").is_err());
        assert!(parse_program("opaque magic q;").is_err());
    }

    #[test]
    fn expression_precedence() {
        let p = parse_program("rz(1 + 2 * 3) q[0];").unwrap();
        let Statement::Apply(op) = &p.statements[0] else {
            panic!();
        };
        let v = op.params[0].eval(&Default::default()).unwrap();
        assert_eq!(v, 7.0);
        let p = parse_program("rz(-pi/2) q[0];").unwrap();
        let Statement::Apply(op) = &p.statements[0] else {
            panic!();
        };
        let v = op.params[0].eval(&Default::default()).unwrap();
        assert!((v + std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("qreg q[2];\nqreg r[;\n").unwrap_err();
        assert_eq!(err.line(), Some(2));
        assert!(err.to_string().contains("line 2"));
    }
}
