//! AST → circuit conversion with hierarchical gate inlining.

use std::collections::HashMap;

use qxmap_circuit::{Circuit, CircuitSkeleton, Gate, OneQubitKind, SkeletonBuilder};

use crate::ast::{Arg, GateOp, Program, Statement};
use crate::parse::ParseQasmError;

struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<GateOp>,
}

/// The standard library's gate definitions, parsed once per process.
/// Programs flag `include "qelib1.inc";` instead of splicing the
/// library's statements (see [`Program::includes_qelib`]); conversion
/// falls back to this table, so per-request parsing never pays for the
/// library again.
fn qelib_gates() -> &'static HashMap<String, GateDef> {
    static TABLE: std::sync::OnceLock<HashMap<String, GateDef>> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let lib = crate::parse::parse_program(crate::qelib::QELIB1)
            .expect("the embedded qelib1.inc parses");
        let mut gates = HashMap::new();
        for stmt in lib.statements {
            if let Statement::GateDef {
                name,
                params,
                qargs,
                body,
            } = stmt
            {
                gates.insert(
                    name,
                    GateDef {
                        params,
                        qargs,
                        body,
                    },
                );
            }
        }
        gates
    })
}

struct Converter {
    qubit_offset: HashMap<String, (usize, usize)>, // name -> (offset, size)
    clbit_offset: HashMap<String, (usize, usize)>,
    num_qubits: usize,
    num_clbits: usize,
    gates: HashMap<String, GateDef>,
    qelib: bool,
}

/// Converts a parsed program into a flat circuit.
///
/// Quantum registers are laid out contiguously in declaration order; gate
/// definitions are inlined recursively with parameters constant-folded.
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown registers or gates, index or
/// arity violations, or broadcast-size mismatches.
pub fn to_circuit(program: &Program) -> Result<Circuit, ParseQasmError> {
    let conv = Converter::of(program);
    let mut circuit = Circuit::with_clbits(conv.num_qubits, conv.num_clbits);
    conv.run(program, &mut |g| circuit.push(g))?;
    crate::hooks::note_circuit_built();
    Ok(circuit)
}

/// Converts a parsed program straight into its canonical
/// [`CircuitSkeleton`] without materializing a [`Circuit`].
///
/// Gates stream into a [`SkeletonBuilder`] as conversion emits them, so
/// the result (tokens, fingerprint, canonical labels) is identical to
/// `CircuitSkeleton::of(&to_circuit(program)?)` — the single-pass entry
/// behind skeleton-first cache probes, where a warm hit never pays for
/// the circuit's gate vector.
///
/// # Errors
///
/// Returns exactly the [`ParseQasmError`] that [`to_circuit`] would
/// return on the same program (both run the same conversion).
pub fn to_skeleton(program: &Program) -> Result<CircuitSkeleton, ParseQasmError> {
    let conv = Converter::of(program);
    let mut builder = SkeletonBuilder::new(conv.num_qubits, conv.num_clbits);
    conv.run(program, &mut |g| builder.push(&g))?;
    Ok(builder.finish())
}

impl Converter {
    /// First pass: registers and gate definitions.
    fn of(program: &Program) -> Converter {
        let mut conv = Converter {
            qubit_offset: HashMap::new(),
            clbit_offset: HashMap::new(),
            num_qubits: 0,
            num_clbits: 0,
            gates: HashMap::new(),
            qelib: program.includes_qelib,
        };
        for stmt in &program.statements {
            match stmt {
                Statement::QReg { name, size } => {
                    conv.qubit_offset
                        .insert(name.clone(), (conv.num_qubits, *size));
                    conv.num_qubits += size;
                }
                Statement::CReg { name, size } => {
                    conv.clbit_offset
                        .insert(name.clone(), (conv.num_clbits, *size));
                    conv.num_clbits += size;
                }
                Statement::GateDef {
                    name,
                    params,
                    qargs,
                    body,
                } => {
                    conv.gates.insert(
                        name.clone(),
                        GateDef {
                            params: params.clone(),
                            qargs: qargs.clone(),
                            body: body.clone(),
                        },
                    );
                }
                _ => {}
            }
        }
        conv
    }

    /// Second pass: applications, streamed into `sink` in program order.
    /// Every emitted gate is in range by construction ([`Converter::expand`]
    /// validates indices), so sinks need no validation of their own.
    fn run(&self, program: &Program, sink: &mut dyn FnMut(Gate)) -> Result<(), ParseQasmError> {
        for stmt in &program.statements {
            match stmt {
                Statement::Apply(op) => self.apply(sink, op)?,
                Statement::Measure { qubit, clbit } => {
                    let qs = self.expand(qubit, &self.qubit_offset)?;
                    let cs = self.expand(clbit, &self.clbit_offset)?;
                    if qs.len() != cs.len() {
                        return Err(ParseQasmError::new(
                            None,
                            format!("measure size mismatch: {qubit} vs {clbit}"),
                        ));
                    }
                    for (q, c) in qs.into_iter().zip(cs) {
                        sink(Gate::Measure { qubit: q, clbit: c });
                    }
                }
                Statement::Barrier(args) => {
                    let mut qs = Vec::new();
                    for a in args {
                        qs.extend(self.expand(a, &self.qubit_offset)?);
                    }
                    sink(Gate::Barrier(qs));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Expands a register argument to concrete global indices.
    fn expand(
        &self,
        arg: &Arg,
        table: &HashMap<String, (usize, usize)>,
    ) -> Result<Vec<usize>, ParseQasmError> {
        let (offset, size) = table.get(&arg.register).ok_or_else(|| {
            ParseQasmError::new(None, format!("unknown register `{}`", arg.register))
        })?;
        match arg.index {
            Some(i) if i < *size => Ok(vec![offset + i]),
            Some(i) => Err(ParseQasmError::new(
                None,
                format!("index {i} out of range for `{}[{size}]`", arg.register),
            )),
            None => Ok((*offset..offset + size).collect()),
        }
    }

    /// Applies a top-level gate op, broadcasting over registers.
    fn apply(&self, sink: &mut dyn FnMut(Gate), op: &GateOp) -> Result<(), ParseQasmError> {
        let expanded: Vec<Vec<usize>> = op
            .args
            .iter()
            .map(|a| self.expand(a, &self.qubit_offset))
            .collect::<Result<_, _>>()?;
        let width = expanded
            .iter()
            .map(Vec::len)
            .filter(|&l| l > 1)
            .max()
            .unwrap_or(1);
        for lane in &expanded {
            if lane.len() != 1 && lane.len() != width {
                return Err(ParseQasmError::new(
                    Some(op.line),
                    format!("broadcast size mismatch in `{}`", op.name),
                ));
            }
        }
        let params: Vec<f64> = op
            .params
            .iter()
            .map(|e| {
                e.eval(&HashMap::new()).map_err(|err| {
                    ParseQasmError::new(Some(op.line), format!("in `{}`: {err}", op.name))
                })
            })
            .collect::<Result<_, _>>()?;
        for lane_idx in 0..width {
            let qubits: Vec<usize> = expanded
                .iter()
                .map(|lane| {
                    if lane.len() == 1 {
                        lane[0]
                    } else {
                        lane[lane_idx]
                    }
                })
                .collect();
            self.emit(sink, &op.name, &params, &qubits, op.line, 0)?;
        }
        Ok(())
    }

    /// Emits one concrete gate application, inlining user definitions.
    fn emit(
        &self,
        sink: &mut dyn FnMut(Gate),
        name: &str,
        params: &[f64],
        qubits: &[usize],
        line: usize,
        depth: usize,
    ) -> Result<(), ParseQasmError> {
        if depth > 64 {
            return Err(ParseQasmError::new(
                Some(line),
                format!("gate `{name}` expands too deeply (recursive definition?)"),
            ));
        }
        let arity_err = |expected: usize| {
            ParseQasmError::new(
                Some(line),
                format!("`{name}` expects {expected} qubit(s), got {}", qubits.len()),
            )
        };
        let param_err = |expected: usize| {
            ParseQasmError::new(
                Some(line),
                format!(
                    "`{name}` expects {expected} parameter(s), got {}",
                    params.len()
                ),
            )
        };
        let one = |kind: OneQubitKind| -> Result<Gate, ParseQasmError> {
            if qubits.len() != 1 {
                return Err(arity_err(1));
            }
            Ok(Gate::one(kind, qubits[0]))
        };
        let known = match name {
            "U" | "u3" => {
                if params.len() != 3 {
                    return Err(param_err(3));
                }
                Some(one(OneQubitKind::U(params[0], params[1], params[2]))?)
            }
            "u2" => {
                if params.len() != 2 {
                    return Err(param_err(2));
                }
                Some(one(OneQubitKind::U(
                    std::f64::consts::FRAC_PI_2,
                    params[0],
                    params[1],
                ))?)
            }
            "u1" => {
                if params.len() != 1 {
                    return Err(param_err(1));
                }
                Some(one(OneQubitKind::Phase(params[0]))?)
            }
            "rx" => {
                if params.len() != 1 {
                    return Err(param_err(1));
                }
                Some(one(OneQubitKind::Rx(params[0]))?)
            }
            "ry" => {
                if params.len() != 1 {
                    return Err(param_err(1));
                }
                Some(one(OneQubitKind::Ry(params[0]))?)
            }
            "rz" => {
                if params.len() != 1 {
                    return Err(param_err(1));
                }
                Some(one(OneQubitKind::Rz(params[0]))?)
            }
            "id" | "u0" => Some(one(OneQubitKind::I)?),
            "x" => Some(one(OneQubitKind::X)?),
            "y" => Some(one(OneQubitKind::Y)?),
            "z" => Some(one(OneQubitKind::Z)?),
            "h" => Some(one(OneQubitKind::H)?),
            "s" => Some(one(OneQubitKind::S)?),
            "sdg" => Some(one(OneQubitKind::Sdg)?),
            "t" => Some(one(OneQubitKind::T)?),
            "tdg" => Some(one(OneQubitKind::Tdg)?),
            "CX" | "cx" => {
                if qubits.len() != 2 {
                    return Err(arity_err(2));
                }
                if qubits[0] == qubits[1] {
                    return Err(ParseQasmError::new(
                        Some(line),
                        "cx control and target coincide",
                    ));
                }
                Some(Gate::cnot(qubits[0], qubits[1]))
            }
            "swap" => {
                if qubits.len() != 2 {
                    return Err(arity_err(2));
                }
                Some(Gate::swap(qubits[0], qubits[1]))
            }
            _ => None,
        };
        if let Some(gate) = known {
            sink(gate);
            return Ok(());
        }
        // User-defined (or qelib-only) gate: inline its body. User
        // definitions shadow the standard library's.
        let def = self
            .gates
            .get(name)
            .or_else(|| self.qelib.then(|| qelib_gates().get(name)).flatten())
            .ok_or_else(|| ParseQasmError::new(Some(line), format!("unknown gate `{name}`")))?;
        if def.qargs.len() != qubits.len() {
            return Err(arity_err(def.qargs.len()));
        }
        if def.params.len() != params.len() {
            return Err(param_err(def.params.len()));
        }
        let bindings: HashMap<String, f64> = def
            .params
            .iter()
            .cloned()
            .zip(params.iter().copied())
            .collect();
        let qubit_of: HashMap<&str, usize> = def
            .qargs
            .iter()
            .map(String::as_str)
            .zip(qubits.iter().copied())
            .collect();
        for body_op in &def.body {
            let sub_params: Vec<f64> = body_op
                .params
                .iter()
                .map(|e| {
                    e.eval(&bindings).map_err(|err| {
                        ParseQasmError::new(Some(body_op.line), format!("in `{name}`: {err}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            let sub_qubits: Vec<usize> = body_op
                .args
                .iter()
                .map(|a| {
                    qubit_of.get(a.register.as_str()).copied().ok_or_else(|| {
                        ParseQasmError::new(
                            Some(body_op.line),
                            format!("unknown gate argument `{}` in `{name}`", a.register),
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            self.emit(
                sink,
                &body_op.name,
                &sub_params,
                &sub_qubits,
                line,
                depth + 1,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    fn circuit(src: &str) -> Circuit {
        to_circuit(&parse_program(src).unwrap()).unwrap()
    }

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    #[test]
    fn basic_gates() {
        let c = circuit(&format!("{HEADER}qreg q[2];\nh q[0];\ncx q[0], q[1];"));
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.gates().len(), 2);
        assert_eq!(c.gates()[1], Gate::cnot(0, 1));
    }

    #[test]
    fn register_broadcast() {
        let c = circuit(&format!("{HEADER}qreg q[3];\nh q;"));
        assert_eq!(c.num_single_qubit_gates(), 3);
        // Two-register broadcast.
        let c = circuit(&format!("{HEADER}qreg a[2];\nqreg b[2];\ncx a, b;"));
        assert_eq!(c.cnot_skeleton(), vec![(0, 2), (1, 3)]);
        // Mixed single/register broadcast.
        let c = circuit(&format!("{HEADER}qreg a[1];\nqreg b[2];\ncx a[0], b;"));
        assert_eq!(c.cnot_skeleton(), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn multiple_registers_are_contiguous() {
        let c = circuit(&format!("{HEADER}qreg a[2];\nqreg b[2];\nx b[1];"));
        assert_eq!(c.gates()[0].qubits(), vec![3]);
    }

    #[test]
    fn toffoli_inlines_to_basis() {
        let c = circuit(&format!("{HEADER}qreg q[3];\nccx q[0], q[1], q[2];"));
        assert_eq!(c.num_cnots(), 6);
        assert_eq!(c.num_single_qubit_gates(), 9);
    }

    #[test]
    fn user_gates_with_params_inline() {
        let c = circuit(&format!(
            "{HEADER}qreg q[2];\ngate foo(a) x, y {{ rz(2*a) x; cx x, y; }}\nfoo(pi) q[1], q[0];"
        ));
        assert_eq!(c.gates().len(), 2);
        match &c.gates()[0] {
            Gate::One {
                kind: OneQubitKind::Rz(v),
                qubit: 1,
            } => assert!((v - 2.0 * std::f64::consts::PI).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.gates()[1], Gate::cnot(1, 0));
    }

    #[test]
    fn measure_and_barrier() {
        let c = circuit(&format!(
            "{HEADER}qreg q[2];\ncreg c[2];\nbarrier q;\nmeasure q -> c;"
        ));
        assert_eq!(c.num_clbits(), 2);
        assert!(matches!(c.gates()[0], Gate::Barrier(_)));
        assert_eq!(c.gates()[2], Gate::Measure { qubit: 1, clbit: 1 });
    }

    #[test]
    fn error_cases() {
        let parse = |s: &str| to_circuit(&parse_program(s).unwrap());
        assert!(parse("qreg q[1];\nmystery q[0];").is_err());
        assert!(parse("qreg q[1];\nCX q[0], q[0];").is_err());
        assert!(parse("qreg q[2];\nU(1,2) q[0];").is_err()); // U needs 3 params
        assert!(parse("qreg q[1];\nx q[5];").is_err());
        assert!(parse("qreg q[1];\nx r[0];").is_err());
        let err = parse("qreg a[2];\nqreg b[3];\nCX a, b;").unwrap_err();
        assert!(err.to_string().contains("broadcast"));
    }

    #[test]
    fn skeleton_conversion_matches_circuit_conversion() {
        let src = format!(
            "{HEADER}qreg q[3];\ncreg c[2];\nh q;\nccx q[0], q[1], q[2];\n\
             barrier q;\nmeasure q[0] -> c[1];"
        );
        let program = parse_program(&src).unwrap();
        let skel = super::to_skeleton(&program).unwrap();
        let full = qxmap_circuit::CircuitSkeleton::of(&to_circuit(&program).unwrap());
        assert_eq!(skel, full);
        assert_eq!(skel.fingerprint(), full.fingerprint());
        assert_eq!(skel.canonical_labels(), full.canonical_labels());
        // Both conversions fail identically on a bad program.
        let bad = parse_program("qreg q[1];\nmystery q[0];").unwrap();
        assert_eq!(
            super::to_skeleton(&bad).unwrap_err(),
            to_circuit(&bad).unwrap_err()
        );
    }

    #[test]
    fn recursive_definitions_are_caught() {
        let src = "qreg q[1];\ngate loop a { loop a; }\nloop q[0];";
        let err = to_circuit(&parse_program(src).unwrap()).unwrap_err();
        assert!(err.to_string().contains("deeply"));
    }
}
