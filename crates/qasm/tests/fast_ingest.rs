//! Fast-ingest properties, pinning the tentpole's equivalence claims:
//!
//! * text ↔ QXBC round-trips produce identical circuits, and the
//!   skeleton-only decoders land on the same canonical skeleton (and
//!   fingerprint) as the full materializing paths;
//! * the parallel QASM parser is indistinguishable from the sequential
//!   one — same program on success, same error (line attribution
//!   included) on failure — across generated, truncated and corrupted
//!   sources;
//! * hostile QXBC bytes (any flip, any truncation, version bumps,
//!   declared-length bombs) are rejected structurally, with preallocation
//!   bounded by the actual payload size.

use proptest::prelude::*;
use qxmap_circuit::{Circuit, CircuitSkeleton, Gate, OneQubitKind};
use qxmap_qasm::{
    decode_qxbc, decode_qxbc_skeleton, encode_qxbc, parse_program, parse_program_chunked,
    QxbcError, QXBC_MAGIC, QXBC_VERSION,
};

fn kind_strategy() -> impl Strategy<Value = OneQubitKind> {
    prop_oneof![
        Just(OneQubitKind::I),
        Just(OneQubitKind::X),
        Just(OneQubitKind::Y),
        Just(OneQubitKind::Z),
        Just(OneQubitKind::H),
        Just(OneQubitKind::S),
        Just(OneQubitKind::Sdg),
        Just(OneQubitKind::T),
        Just(OneQubitKind::Tdg),
        (-10.0f64..10.0).prop_map(OneQubitKind::Rx),
        (-10.0f64..10.0).prop_map(OneQubitKind::Ry),
        (-10.0f64..10.0).prop_map(OneQubitKind::Rz),
        (-10.0f64..10.0).prop_map(OneQubitKind::Phase),
        (-6.0f64..6.0, -6.0f64..6.0, -6.0f64..6.0).prop_map(|(t, p, l)| OneQubitKind::U(t, p, l)),
    ]
}

/// Circuits over every gate family QXBC can frame — including barriers
/// (variable-length aux records) and measurements (classical bits).
fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (2usize..6, 1usize..4).prop_flat_map(|(n, m)| {
        let gate = prop_oneof![
            (kind_strategy(), 0..n).prop_map(|(k, q)| Gate::one(k, q)),
            (0..n, 1..n).prop_map(move |(c, d)| Gate::Cnot {
                control: c,
                target: (c + d) % n,
            }),
            (0..n, 1..n).prop_map(move |(a, d)| Gate::Swap { a, b: (a + d) % n }),
            prop::collection::vec(0..n, 1..4).prop_map(|mut qs| {
                qs.sort_unstable();
                qs.dedup();
                Gate::Barrier(qs)
            }),
            (0..n, 0..m).prop_map(|(q, c)| Gate::Measure { qubit: q, clbit: c }),
        ];
        prop::collection::vec(gate, 0..25).prop_map(move |gates| {
            let mut c = Circuit::with_clbits(n, m);
            c.extend(gates);
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Text and QXBC are two encodings of the same circuit: the binary
    /// round-trip is gate-for-gate identical, and all four ingest paths
    /// (text→circuit, text→skeleton, QXBC→circuit, QXBC→skeleton) agree
    /// on the canonical skeleton and its fingerprint.
    #[test]
    fn qxbc_round_trips_and_all_ingest_paths_agree(c in circuit_strategy()) {
        let bytes = encode_qxbc(&c);
        let back = decode_qxbc(&bytes).unwrap();
        prop_assert_eq!(back.gates(), c.gates());
        prop_assert_eq!(back.num_qubits(), c.num_qubits());
        prop_assert_eq!(back.num_clbits(), c.num_clbits());
        prop_assert_eq!(back.name(), c.name());

        let skel = decode_qxbc_skeleton(&bytes).unwrap();
        let full = CircuitSkeleton::of(&c);
        prop_assert_eq!(&skel, &full);
        prop_assert_eq!(skel.fingerprint(), full.fingerprint());

        let text = qxmap_qasm::to_qasm(&c);
        let text_skel = qxmap_qasm::parse_skeleton(&text).unwrap();
        prop_assert_eq!(text_skel.fingerprint(), full.fingerprint());
    }

    /// The parallel parser is equivalent to the sequential one on valid
    /// sources, on truncated sources (frequently malformed mid-token)
    /// and on sources with an injected hostile byte — same `Ok`, or the
    /// same error with the same line.
    #[test]
    fn parallel_parse_is_indistinguishable_from_sequential(
        c in circuit_strategy(),
        chunks in 2usize..9,
        cut in 0usize..1_000_000,
        idx in 0usize..1_000_000,
        hostile in prop_oneof![
            Just(b'}'), Just(b'{'), Just(b';'), Just(b'@'), Just(b'"'), Just(b'['),
        ],
    ) {
        let text = qxmap_qasm::to_qasm(&c);
        prop_assert_eq!(parse_program_chunked(&text, chunks), parse_program(&text));

        // QASM text is ASCII, so any byte index is a char boundary.
        let truncated = &text[..cut % (text.len() + 1)];
        prop_assert_eq!(
            parse_program_chunked(truncated, chunks),
            parse_program(truncated)
        );

        let mut corrupted = text.into_bytes();
        let i = idx % corrupted.len();
        corrupted[i] = hostile;
        let corrupted = String::from_utf8(corrupted).expect("ASCII stays ASCII");
        prop_assert_eq!(
            parse_program_chunked(&corrupted, chunks),
            parse_program(&corrupted)
        );
    }

    /// Every checksummed byte matters and every prefix is incomplete:
    /// any single-byte flip and any strict truncation must be rejected —
    /// by the circuit decoder and the skeleton decoder alike.
    #[test]
    fn any_flip_or_truncation_of_qxbc_is_rejected(
        c in circuit_strategy(),
        flip in 0usize..1_000_000,
        cut in 0usize..1_000_000,
    ) {
        let bytes = encode_qxbc(&c);
        let mut corrupted = bytes.clone();
        let i = flip % corrupted.len();
        corrupted[i] ^= 0x10;
        prop_assert!(decode_qxbc(&corrupted).is_err(), "flip at {} survived", i);
        prop_assert!(decode_qxbc_skeleton(&corrupted).is_err());

        let cut = cut % bytes.len();
        prop_assert!(decode_qxbc(&bytes[..cut]).is_err(), "cut to {} survived", cut);
        prop_assert!(decode_qxbc_skeleton(&bytes[..cut]).is_err());
    }

    /// A future format version is rejected up front, not misparsed.
    #[test]
    fn version_bumps_are_rejected(c in circuit_strategy(), bump in 1u8..=255) {
        let mut bytes = encode_qxbc(&c);
        bytes[8] = bytes[8].wrapping_add(bump);
        let found = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        prop_assert_eq!(
            decode_qxbc(&bytes).unwrap_err(),
            QxbcError::VersionMismatch { found, supported: QXBC_VERSION }
        );
    }
}

/// A header that declares billions of gates (or aux words) backed by a
/// tiny payload must fail from the *declared-vs-available* check before
/// any allocation — mirroring the snapshot format's length-bomb
/// discipline.
#[test]
fn declared_length_bombs_are_bounded_before_allocation() {
    for (gate_count, aux_count) in [(u32::MAX, 0u32), (0, u32::MAX), (u32::MAX, u32::MAX)] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(QXBC_MAGIC);
        bytes.extend_from_slice(&QXBC_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // name length
        bytes.extend_from_slice(&4u32.to_le_bytes()); // qubits
        bytes.extend_from_slice(&0u32.to_le_bytes()); // clbits
        bytes.extend_from_slice(&gate_count.to_le_bytes());
        bytes.extend_from_slice(&aux_count.to_le_bytes());
        let start = std::time::Instant::now();
        assert_eq!(decode_qxbc(&bytes).unwrap_err(), QxbcError::Truncated);
        assert_eq!(
            decode_qxbc_skeleton(&bytes).unwrap_err(),
            QxbcError::Truncated
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "a length bomb must fail by arithmetic, not by allocation"
        );
    }
}
