//! Property-based round-trip tests: every circuit the writer can emit is
//! reparsed bit-identically.

use proptest::prelude::*;
use qxmap_circuit::{Circuit, Gate, OneQubitKind};

fn kind_strategy() -> impl Strategy<Value = OneQubitKind> {
    prop_oneof![
        Just(OneQubitKind::I),
        Just(OneQubitKind::X),
        Just(OneQubitKind::Y),
        Just(OneQubitKind::Z),
        Just(OneQubitKind::H),
        Just(OneQubitKind::S),
        Just(OneQubitKind::Sdg),
        Just(OneQubitKind::T),
        Just(OneQubitKind::Tdg),
        (-10.0f64..10.0).prop_map(OneQubitKind::Rx),
        (-10.0f64..10.0).prop_map(OneQubitKind::Ry),
        (-10.0f64..10.0).prop_map(OneQubitKind::Rz),
        (-10.0f64..10.0).prop_map(OneQubitKind::Phase),
        (-6.0f64..6.0, -6.0f64..6.0, -6.0f64..6.0).prop_map(|(t, p, l)| OneQubitKind::U(t, p, l)),
    ]
}

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    // n ≥ 2 so two-qubit gates always have distinct operands; the pair is
    // built arithmetically (no rejection filter).
    (2usize..6).prop_flat_map(|n| {
        let gate = prop_oneof![
            (kind_strategy(), 0..n).prop_map(|(k, q)| Gate::one(k, q)),
            (0..n, 1..n).prop_map(move |(c, d)| Gate::Cnot {
                control: c,
                target: (c + d) % n,
            }),
            (0..n, 1..n).prop_map(move |(a, d)| Gate::Swap { a, b: (a + d) % n }),
        ];
        prop::collection::vec(gate, 0..25).prop_map(move |gates| {
            let mut c = Circuit::new(n);
            c.extend(gates);
            c
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn write_parse_roundtrip(c in circuit_strategy()) {
        let text = qxmap_qasm::to_qasm(&c);
        let back = qxmap_qasm::parse(&text)
            .unwrap_or_else(|e| panic!("exporter emitted invalid QASM: {e}\n{text}"));
        prop_assert_eq!(back.num_qubits(), c.num_qubits());
        prop_assert_eq!(back.gates(), c.gates());
    }

    /// Parsing is deterministic and idempotent through a second roundtrip.
    #[test]
    fn double_roundtrip_is_stable(c in circuit_strategy()) {
        let once = qxmap_qasm::parse(&qxmap_qasm::to_qasm(&c)).expect("valid");
        let twice = qxmap_qasm::parse(&qxmap_qasm::to_qasm(&once)).expect("valid");
        prop_assert_eq!(once.gates(), twice.gates());
    }
}
