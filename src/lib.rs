//! # qxmap — Mapping Quantum Circuits to IBM QX Architectures Using the
//! Minimal Number of SWAP and H Operations
//!
//! A complete Rust reproduction of Wille, Burgholzer & Zulehner (DAC
//! 2019): exact, SAT-based qubit mapping with provably minimal SWAP/H
//! insertion cost, the paper's performance optimizations, the heuristic
//! baselines it compares against, and every substrate required to run the
//! evaluation end to end — circuit IR, OpenQASM 2.0, device models, a
//! CDCL SAT solver with objective minimization, a statevector simulator,
//! and the benchmark workloads.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`circuit`] | `qxmap-circuit` | circuit IR, layers, DAG, drawing |
//! | [`arch`] | `qxmap-arch` | coupling maps, devices, permutations, `swaps(π)` tables, layouts, routing |
//! | [`sat`] | `qxmap-sat` | CDCL solver, encodings, totalizer, minimizer |
//! | [`core`] | `qxmap-core` | the exact mapper (the paper's contribution) |
//! | [`qasm`] | `qxmap-qasm` | OpenQASM 2.0 parser/writer |
//! | [`heuristic`] | `qxmap-heuristic` | stochastic-swap / A* / SABRE / naive baselines |
//! | [`map`] | `qxmap-map` | **the unified mapping surface**: `MapRequest` → `MapReport` over every engine, portfolio runner, batch entry point |
//! | [`sim`] | `qxmap-sim` | statevector simulation & equivalence checking |
//! | [`benchmarks`] | `qxmap-benchmarks` | Table 1 profiles, generators, `.real` parser |
//!
//! ## Quickstart
//!
//! Map the paper's running example (Fig. 1a) to IBM QX4 through the
//! unified surface. The portfolio engine runs a cheap heuristic, seeds
//! the exact SAT search with its cost, and returns a provably minimal
//! result whenever the device is in the exact method's regime:
//!
//! ```
//! use qxmap::arch::devices;
//! use qxmap::circuit::paper_example;
//! use qxmap::map::{Engine, MapRequest, Portfolio};
//!
//! let request = MapRequest::new(paper_example(), devices::ibm_qx4());
//! let report = Portfolio::new().run(&request)?;
//! assert_eq!(report.cost.objective, 4); // Example 7 of the paper
//! assert!(report.proved_optimal);
//! println!("{}", report.mapped);
//! # Ok::<(), qxmap::map::MapperError>(())
//! ```
//!
//! Batches go through [`map::map_many`], which fans requests out across
//! std threads and returns one report per request, in order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qxmap_arch as arch;
pub use qxmap_benchmarks as benchmarks;
pub use qxmap_circuit as circuit;
pub use qxmap_core as core;
pub use qxmap_heuristic as heuristic;
pub use qxmap_map as map;
pub use qxmap_qasm as qasm;
pub use qxmap_sat as sat;
pub use qxmap_sim as sim;
