//! # qxmap — Mapping Quantum Circuits to IBM QX Architectures Using the
//! Minimal Number of SWAP and H Operations
//!
//! A complete Rust reproduction of Wille, Burgholzer & Zulehner (DAC
//! 2019): exact, SAT-based qubit mapping with provably minimal SWAP/H
//! insertion cost, the paper's performance optimizations, the heuristic
//! baselines it compares against, and every substrate required to run the
//! evaluation end to end — circuit IR, OpenQASM 2.0, device models, a
//! CDCL SAT solver with objective minimization, a statevector simulator,
//! and the benchmark workloads.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`circuit`] | `qxmap-circuit` | circuit IR, layers, DAG, drawing |
//! | [`arch`] | `qxmap-arch` | coupling maps, devices, permutations, `swaps(π)` tables, layouts, routing |
//! | [`sat`] | `qxmap-sat` | CDCL solver, encodings, totalizer, minimizer |
//! | [`core`] | `qxmap-core` | the exact mapper (the paper's contribution) |
//! | [`qasm`] | `qxmap-qasm` | OpenQASM 2.0 parser/writer |
//! | [`heuristic`] | `qxmap-heuristic` | stochastic-swap / A* / naive baselines |
//! | [`sim`] | `qxmap-sim` | statevector simulation & equivalence checking |
//! | [`benchmarks`] | `qxmap-benchmarks` | Table 1 profiles, generators, `.real` parser |
//!
//! ## Quickstart
//!
//! Map the paper's running example (Fig. 1a) to IBM QX4 with provably
//! minimal cost:
//!
//! ```
//! use qxmap::arch::devices;
//! use qxmap::circuit::paper_example;
//! use qxmap::core::ExactMapper;
//!
//! let mapper = ExactMapper::new(devices::ibm_qx4());
//! let result = mapper.map(&paper_example())?;
//! assert_eq!(result.cost, 4); // Example 7 of the paper
//! println!("{}", result.mapped);
//! # Ok::<(), qxmap::core::MapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qxmap_arch as arch;
pub use qxmap_benchmarks as benchmarks;
pub use qxmap_circuit as circuit;
pub use qxmap_core as core;
pub use qxmap_heuristic as heuristic;
pub use qxmap_qasm as qasm;
pub use qxmap_sat as sat;
pub use qxmap_sim as sim;
