//! # qxmap — Mapping Quantum Circuits to IBM QX Architectures Using the
//! Minimal Number of SWAP and H Operations
//!
//! A complete Rust reproduction of Wille, Burgholzer & Zulehner (DAC
//! 2019): exact, SAT-based qubit mapping with provably minimal SWAP/H
//! insertion cost, the paper's performance optimizations, the heuristic
//! baselines it compares against, and every substrate required to run the
//! evaluation end to end — circuit IR, OpenQASM 2.0, device models, a
//! CDCL SAT solver with objective minimization, a statevector simulator,
//! and the benchmark workloads.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`circuit`] | `qxmap-circuit` | circuit IR, layers, DAG, drawing |
//! | [`arch`] | `qxmap-arch` | coupling maps, devices, permutations, `swaps(π)` tables, layouts, routing |
//! | [`sat`] | `qxmap-sat` | CDCL solver, encodings, totalizer, minimizer |
//! | [`core`] | `qxmap-core` | the exact mapper (the paper's contribution) |
//! | [`qasm`] | `qxmap-qasm` | OpenQASM 2.0 parser/writer |
//! | [`heuristic`] | `qxmap-heuristic` | stochastic-swap / A* / SABRE / naive baselines |
//! | [`map`] | `qxmap-map` | **the unified mapping surface**: `MapRequest` → `MapReport` over every engine, portfolio runner, batch entry point |
//! | [`window`] | `qxmap-window` | window-decomposed mapping past the 8-qubit wall: slice → exact-solve → stitch, with per-window certificates |
//! | [`serve`] | `qxmap-serve` | **the serving tier**: mapping daemon, JSON wire protocol, solve-cache snapshots |
//! | [`sim`] | `qxmap-sim` | statevector simulation & equivalence checking |
//! | [`benchmarks`] | `qxmap-benchmarks` | Table 1 profiles, generators, `.real` parser |
//!
//! ## Quickstart
//!
//! Map the paper's running example (Fig. 1a) to IBM QX4 through the
//! unified surface. The portfolio engine runs a cheap heuristic, seeds
//! the exact SAT search with its cost, and returns a provably minimal
//! result whenever the device is in the exact method's regime:
//!
//! ```
//! use qxmap::arch::devices;
//! use qxmap::circuit::paper_example;
//! use qxmap::map::{Engine, MapRequest, Portfolio};
//!
//! let request = MapRequest::new(paper_example(), devices::ibm_qx4());
//! let report = Portfolio::new().run(&request)?;
//! assert_eq!(report.cost.objective, 4); // Example 7 of the paper
//! assert!(report.proved_optimal);
//! println!("{}", report.mapped);
//! # Ok::<(), qxmap::map::MapperError>(())
//! ```
//!
//! Batches go through [`map::map_many`], which deduplicates identical
//! subcircuits against the process-wide solve cache and fans the rest
//! out across std threads, returning one report per request, in order.
//! The repository-level `GUIDE.md` walks the whole surface — quickstart,
//! guarantees, deadlines, batching, caching — and its snippets compile
//! as this crate's doctests (see the hidden `guide` module), so the
//! guide cannot drift from the API.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use qxmap_arch as arch;
pub use qxmap_benchmarks as benchmarks;
pub use qxmap_circuit as circuit;
pub use qxmap_core as core;
pub use qxmap_heuristic as heuristic;
pub use qxmap_map as map;
pub use qxmap_qasm as qasm;
pub use qxmap_sat as sat;
pub use qxmap_serve as serve;
pub use qxmap_sim as sim;
pub use qxmap_window as window;

/// `GUIDE.md`, compiled: every ```rust snippet in the user guide runs as
/// a doctest of this crate, so `cargo test --doc` fails on guide drift.
#[cfg(doctest)]
#[doc = include_str!("../GUIDE.md")]
pub mod guide_doctests {}

/// `README.md`, compiled: the README's quickstart runs as a doctest of
/// this crate, so `cargo test --doc` fails on README drift.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub mod readme_doctests {}
